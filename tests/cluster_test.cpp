// The sharded serving layer (serve/cluster.h) and its support pieces
// (LatencyHistogram::Snapshot::merge, aggregate_server_stats,
// merge_profiles):
//
//   - a submit storm through a Cluster produces bit-identical results to
//     sequential Deployment::run, on every simulated target, under both
//     routing policies -- routing affects placement, never results,
//   - the aggregation identities hold: summed per-shard totals equal the
//     cluster totals, merged latency percentiles stay within bucket
//     resolution,
//   - consistent-hash keeps a function on one shard and re-routes it
//     when that shard drains; least-loaded spreads same-function traffic
//     near-evenly,
//   - drain(shard) under live traffic loses nothing, and restart(shard)
//     re-warms from the persistent store with zero JIT compiles,
//   - cross-shard profile merging aggregates fleet traffic exactly once
//     (repeated merges do not double-count the seeded baseline).
//
// This suite runs under ThreadSanitizer in CI; sizes are kept small.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "api/svc.h"
#include "support/latency_histogram.h"
#include "test_util.h"
#include "vm/profile.h"

namespace svc {
namespace {

using svc::testing::value_or_die;
namespace fs = std::filesystem;

// --- support pieces --------------------------------------------------------

TEST(LatencyHistogramMergeTest, MergeEqualsCombinedStream) {
  LatencyHistogram a, b, combined;
  for (uint64_t v : {100u, 120u, 90u, 100000u}) {
    a.record(v);
    combined.record(v);
  }
  for (uint64_t v : {7u, 3000u, 100u}) {
    b.record(v);
    combined.record(v);
  }
  LatencyHistogram::Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const LatencyHistogram::Snapshot expect = combined.snapshot();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_EQ(merged.sum, expect.sum);
  EXPECT_EQ(merged.min, expect.min);
  EXPECT_EQ(merged.max, expect.max);
  for (size_t bkt = 0; bkt < LatencyHistogram::kBuckets; ++bkt) {
    EXPECT_EQ(merged.buckets[bkt], expect.buckets[bkt]) << "bucket " << bkt;
  }
  // Position-aligned buckets make merged percentiles exactly the
  // combined stream's percentiles, not an approximation of them.
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.percentile(q), expect.percentile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramMergeTest, MergeWithEmptySidesIsIdentity) {
  LatencyHistogram a;
  a.record(42);
  LatencyHistogram::Snapshot merged = a.snapshot();
  merged.merge(LatencyHistogram().snapshot());
  EXPECT_EQ(merged.count, 1u);
  EXPECT_EQ(merged.min, 42u);
  EXPECT_EQ(merged.max, 42u);

  LatencyHistogram::Snapshot empty = LatencyHistogram().snapshot();
  empty.merge(a.snapshot());
  EXPECT_EQ(empty.count, 1u);
  EXPECT_EQ(empty.min, 42u) << "an empty left side must adopt min";
}

TEST(MergeProfilesTest, UnionOfFunctionRangesNullsSkipped) {
  ProfileData small(1);
  small.record_call(0);
  small.record_call(0);
  ProfileData big(3);
  big.record_call(0);
  big.record_call(2);

  const std::vector<const ProfileData*> parts = {&small, nullptr, &big};
  const ProfileData merged = merge_profiles(parts);
  ASSERT_EQ(merged.num_functions(), 3u);
  EXPECT_EQ(merged.function(0).calls, 3u);
  EXPECT_EQ(merged.function(1).calls, 0u);
  EXPECT_EQ(merged.function(2).calls, 1u);

  EXPECT_EQ(merge_profiles({}).num_functions(), 0u);
}

TEST(AggregateServerStatsTest, TotalsSumAndFunctionsMergeByName) {
  ServerStats a;
  a.submitted = 10;
  a.accepted = 9;
  a.rejected = 1;
  a.completed = 9;
  a.batches = 3;
  a.sim_cycles = 900;
  a.wall_seconds = 2.0;
  a.latency.count = 9;
  a.latency.sum = 900;
  a.latency.min = 50;
  a.latency.max = 200;
  a.functions.push_back({"reduce", 0, 6, 1, 6, 2, 4, 0, {}});
  a.functions.push_back({"scale", 1, 3, 0, 3, 3, 0, 0, {}});

  ServerStats b;
  b.submitted = 4;
  b.accepted = 4;
  b.completed = 4;
  b.batches = 2;
  b.sim_cycles = 400;
  b.wall_seconds = 4.0;
  b.latency.count = 4;
  b.latency.sum = 400;
  b.latency.min = 10;
  b.latency.max = 500;
  b.functions.push_back({"reduce", 2, 4, 0, 4, 0, 2, 2, {}});

  const std::vector<ServerStats> shards = {a, b};
  const ServerStats total = aggregate_server_stats(shards);
  EXPECT_EQ(total.submitted, 14u);
  EXPECT_EQ(total.accepted, 13u);
  EXPECT_EQ(total.rejected, 1u);
  EXPECT_EQ(total.completed, 13u);
  EXPECT_EQ(total.batches, 5u);
  EXPECT_EQ(total.sim_cycles, 1300u);
  EXPECT_DOUBLE_EQ(total.wall_seconds, 4.0) << "shards serve concurrently";
  EXPECT_DOUBLE_EQ(total.requests_per_sec, 13.0 / 4.0);
  EXPECT_EQ(total.latency.count, 13u);
  EXPECT_EQ(total.latency.sum, 1300u);
  EXPECT_EQ(total.latency.min, 10u);
  EXPECT_EQ(total.latency.max, 500u);
  EXPECT_TRUE(total.cores.empty())
      << "core indices are per-server; the fold must not invent a fleet "
         "core table";

  ASSERT_EQ(total.functions.size(), 2u);
  const FunctionServeStats& reduce = total.functions[0];
  EXPECT_EQ(reduce.name, "reduce");
  EXPECT_EQ(reduce.accepted, 10u);
  EXPECT_EQ(reduce.completed, 10u);
  EXPECT_EQ(reduce.tier0, 2u);
  EXPECT_EQ(reduce.tier1, 6u);
  EXPECT_EQ(reduce.tier2, 2u);
  EXPECT_EQ(total.functions[1].name, "scale");
}

// --- serving fixtures ------------------------------------------------------

constexpr uint32_t kDataBase = 4096;
constexpr int kElems = 256;

ModuleHandle build_reduce_suite() {
  Module suite;
  suite.set_name("serve_suite");
  for (const KernelInfo& k : table1_kernels()) {
    if (k.shape != KernelShape::ReduceU8 && k.shape != KernelShape::ReduceU16) {
      continue;
    }
    Module m = value_or_die(compile_module(k.source));
    suite.add_function(m.function(0));
  }
  return ModuleHandle::adopt(std::move(suite));
}

void fill_data(Memory& mem) {
  for (uint32_t i = 0; i < 2 * kElems; ++i) {
    mem.store_u8(kDataBase + i, static_cast<uint8_t>(i * 37 + 11));
  }
}

std::vector<Value> reduce_args() {
  return {Value::make_i32(kDataBase), Value::make_i32(kElems)};
}

std::vector<CoreSpec> all_target_cores() {
  std::vector<CoreSpec> cores;
  for (TargetKind kind : all_targets()) {
    cores.push_back({kind, kind == TargetKind::SpuSim});
  }
  return cores;
}

/// Fresh persistent-store directory per test, removed on destruction.
struct TempStore {
  TempStore() {
    static std::atomic<int> counter{0};
    dir = (fs::temp_directory_path() /
           ("svc_cluster_test_" +
            std::to_string(static_cast<long long>(getpid())) + "_" +
            std::to_string(counter.fetch_add(1))))
              .string();
    fs::remove_all(dir);
  }
  ~TempStore() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string dir;
};

std::vector<Value> sequential_reference(const Engine& engine,
                                        const ModuleHandle& suite) {
  Deployment reference =
      value_or_die(engine.deploy(suite, all_target_cores()));
  fill_data(reference.memory());
  std::vector<Value> expected;
  for (uint32_t f = 0; f < suite->num_functions(); ++f) {
    const SimResult r = value_or_die(
        reference.run(suite->function(f).name(), reduce_args()));
    EXPECT_TRUE(r.ok());
    expected.push_back(r.value);
  }
  return expected;
}

// --- the cluster -----------------------------------------------------------

TEST(ClusterTest, StormBitIdenticalToSequentialRunAllTargetsBothPolicies) {
  const ModuleHandle suite = build_reduce_suite();
  ASSERT_EQ(suite->num_functions(), 3u);
  const Engine engine = value_or_die(Engine::Builder()
                                         .tiered(/*promote_threshold=*/2)
                                         .profiling()
                                         .tier2(/*threshold=*/4)
                                         .pool_threads(2)
                                         .serving({.workers = 0,
                                                   .queue_depth = 1024,
                                                   .batch_max = 8})
                                         .build());
  const std::vector<Value> expected = sequential_reference(engine, suite);

  for (const RoutingPolicy policy :
       {RoutingPolicy::ConsistentHash, RoutingPolicy::LeastLoaded}) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.routing = policy;
    opts.memory_init = fill_data;
    Cluster cluster = value_or_die(
        Cluster::create(engine, suite, all_target_cores(), opts));
    ASSERT_EQ(cluster.num_shards(), 2u);

    constexpr int kClients = 4;
    constexpr int kPerClientPerFn = 6;
    std::vector<std::future<Result<SimResult>>> futures(
        kClients * kPerClientPerFn * 3);
    {
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
          for (int i = 0; i < kPerClientPerFn * 3; ++i) {
            const uint32_t f = static_cast<uint32_t>(i % 3);
            futures[static_cast<size_t>(t) * kPerClientPerFn * 3 + i] =
                cluster.submit(suite->function(f).name(), reduce_args());
          }
        });
      }
      for (auto& t : clients) t.join();
    }
    for (size_t slot = 0; slot < futures.size(); ++slot) {
      Result<SimResult> r = futures[slot].get();
      ASSERT_TRUE(r.ok()) << r.error_text();
      ASSERT_TRUE(r->ok());
      const uint32_t f = static_cast<uint32_t>(slot % 3);
      EXPECT_EQ(r->value, expected[f])
          << "cluster result diverged from sequential run for '"
          << suite->function(f).name() << "'";
    }

    // Aggregation identities after quiescing: the fleet-wide fold equals
    // the sum of the shards, and the cluster-level routing counters
    // reconcile with what the shards accepted.
    cluster.drain();
    const ClusterStats stats = cluster.stats();
    const uint64_t total = futures.size();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.routed, total);
    EXPECT_EQ(stats.rejected_unroutable, 0u);
    EXPECT_EQ(stats.aggregate.submitted, total);
    EXPECT_EQ(stats.aggregate.completed, total);
    EXPECT_EQ(stats.aggregate.latency.count, total);
    uint64_t shard_completed = 0, shard_routed = 0, shard_cycles = 0;
    for (const ShardStats& ss : stats.shards) {
      shard_completed += ss.server.completed;
      shard_routed += ss.routed;
      shard_cycles += ss.server.sim_cycles;
      EXPECT_EQ(ss.server.submitted, ss.routed)
          << "every request a shard saw came through the cluster";
    }
    EXPECT_EQ(shard_completed, total);
    EXPECT_EQ(shard_routed, total);
    EXPECT_EQ(shard_cycles, stats.aggregate.sim_cycles);
    EXPECT_GT(stats.aggregate.sim_cycles, 0u);
    // Merged percentiles stay within the observed range (bucket
    // resolution -- see LatencyHistogram::Snapshot::merge).
    const LatencyHistogram::Snapshot& lat = stats.aggregate.latency;
    EXPECT_GE(lat.percentile(0.50), lat.min);
    EXPECT_LE(lat.percentile(0.50), lat.max);
    EXPECT_GE(lat.percentile(0.99), lat.min);
    EXPECT_LE(lat.percentile(0.99), lat.max);
  }
}

TEST(ClusterTest, ConsistentHashPinsFunctionAndRedrainsReroute) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder().build());
  ClusterOptions opts;
  opts.shards = 3;
  opts.memory_init = fill_data;
  Cluster cluster = value_or_die(Cluster::create(
      engine, suite, {{TargetKind::X86Sim, false}}, opts));

  const std::string fn(suite->function(0).name());
  const size_t home = value_or_die(cluster.routed_shard(fn));
  for (int i = 0; i < 6; ++i) {
    Result<SimResult> r = cluster.submit(fn, reduce_args()).get();
    ASSERT_TRUE(r.ok()) << r.error_text();
  }
  cluster.drain();
  ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.shards[home].routed, 6u)
      << "consistent hash must pin a function to its home shard";

  // Drain the home shard: traffic must re-route to a peer, not be lost.
  value_or_die(cluster.drain(home));
  EXPECT_EQ(value_or_die(cluster.shard_health(home)),
            ShardHealth::Draining);
  for (int i = 0; i < 4; ++i) {
    Result<SimResult> r = cluster.submit(fn, reduce_args()).get();
    ASSERT_TRUE(r.ok()) << r.error_text();
  }
  cluster.drain();
  stats = cluster.stats();
  EXPECT_EQ(stats.shards[home].routed, 6u)
      << "a Draining shard must receive no new cluster traffic";
  EXPECT_EQ(stats.routed, 10u);
  EXPECT_EQ(stats.rejected_unroutable, 0u);
  // The static ring answer is unchanged -- re-routing is a health
  // overlay, not a ring rebuild.
  EXPECT_EQ(value_or_die(cluster.routed_shard(fn)), home);
}

TEST(ClusterTest, LeastLoadedSpreadsSameFunctionTraffic) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder().build());
  ClusterOptions opts;
  opts.shards = 4;
  opts.routing = RoutingPolicy::LeastLoaded;
  opts.memory_init = fill_data;
  Cluster cluster = value_or_die(Cluster::create(
      engine, suite, {{TargetKind::X86Sim, false}}, opts));

  // routed_shard has no static answer under least-loaded routing.
  EXPECT_FALSE(cluster.routed_shard(suite->function(0).name()).ok());

  constexpr uint64_t kRequests = 64;
  const std::string fn(suite->function(0).name());
  for (uint64_t i = 0; i < kRequests; ++i) {
    Result<SimResult> r = cluster.submit(fn, reduce_args()).get();
    ASSERT_TRUE(r.ok()) << r.error_text();
  }
  cluster.drain();
  const ClusterStats stats = cluster.stats();
  uint64_t min_routed = UINT64_MAX, max_routed = 0;
  for (const ShardStats& ss : stats.shards) {
    min_routed = std::min(min_routed, ss.routed);
    max_routed = std::max(max_routed, ss.routed);
  }
  EXPECT_GE(min_routed, kRequests / 8)
      << "least-loaded must not starve a shard";
  EXPECT_LE(max_routed, kRequests / 2)
      << "least-loaded must not pile same-function traffic onto one "
         "shard (consistent hash would)";
}

TEST(ClusterTest, DrainUnderLiveTrafficLosesNothingRestartZeroCompiles) {
  const TempStore store;
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder()
                                         .tiered(/*promote_threshold=*/1)
                                         .pool_threads(2)
                                         .persistent_cache(store.dir)
                                         .serving({.workers = 0,
                                                   .queue_depth = 1024,
                                                   .batch_max = 4})
                                         .build());
  ClusterOptions opts;
  opts.shards = 2;
  opts.routing = RoutingPolicy::LeastLoaded;
  opts.memory_init = fill_data;
  Cluster cluster = value_or_die(Cluster::create(
      engine, suite, {{TargetKind::X86Sim, false}}, opts));

  // Populate the persistent store (and the shards' own caches).
  cluster.warm_up();

  // Live traffic across the drain + restart: every submitted request
  // must resolve with a bit-correct result -- none lost, none broken.
  constexpr int kClients = 3;
  constexpr int kPerClient = 40;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        const uint32_t f = static_cast<uint32_t>(i % 3);
        Result<SimResult> r =
            cluster.submit(suite->function(f).name(), reduce_args()).get();
        if (!r.ok() || !r->ok()) {
          failures.fetch_add(1);
        } else {
          completed.fetch_add(1);
        }
      }
    });
  }

  ASSERT_TRUE(cluster.drain(0).ok());
  EXPECT_EQ(value_or_die(cluster.shard_health(0)), ShardHealth::Draining);
  ASSERT_TRUE(cluster.restart(0).ok());
  EXPECT_EQ(value_or_die(cluster.shard_health(0)), ShardHealth::Serving);

  for (auto& t : clients) t.join();
  cluster.drain();
  EXPECT_EQ(failures.load(), 0)
      << "drain/restart under live traffic must lose nothing";
  EXPECT_EQ(completed.load(),
            static_cast<uint64_t>(kClients) * kPerClient);

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.rejected_unroutable, 0u)
      << "the peer shard must cover while shard 0 is out";
  EXPECT_EQ(stats.shards[0].restarts, 1u);
  // The restarted shard re-warmed from the persistent store: artifacts
  // installed from disk, the JIT never invoked.
  EXPECT_EQ(stats.shards[0].server.cache.get("cache.compiles"), 0)
      << "a warm persistent store must make restart compile-free";
  EXPECT_GT(stats.shards[0].server.cache.get("cache.disk_hits"), 0);
}

TEST(ClusterTest, NoServingShardRejectsUnroutable) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder().build());
  ClusterOptions opts;
  opts.shards = 1;
  opts.memory_init = fill_data;
  Cluster cluster = value_or_die(Cluster::create(
      engine, suite, {{TargetKind::X86Sim, false}}, opts));
  ASSERT_TRUE(cluster.drain(0).ok());

  Result<SimResult> r =
      cluster.submit(suite->function(0).name(), reduce_args()).get();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("no Serving shard"), std::string::npos);
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.rejected_unroutable, 1u);
  EXPECT_EQ(stats.routed, 0u);

  EXPECT_FALSE(cluster.drain(7).ok());
  EXPECT_FALSE(cluster.restart(7).ok());
  EXPECT_FALSE(cluster.shard_health(7).ok());
}

TEST(ClusterTest, ProfileMergeAggregatesFleetTrafficWithoutDoubleCount) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder()
                                         .tiered(/*promote_threshold=*/1000)
                                         .profiling()
                                         .build());
  ClusterOptions opts;
  opts.shards = 2;
  opts.routing = RoutingPolicy::LeastLoaded;
  opts.memory_init = fill_data;
  Cluster cluster = value_or_die(Cluster::create(
      engine, suite, {{TargetKind::X86Sim, false}}, opts));

  constexpr uint64_t kPerFn = 8;
  for (uint32_t f = 0; f < suite->num_functions(); ++f) {
    for (uint64_t i = 0; i < kPerFn; ++i) {
      ASSERT_TRUE(
          cluster.submit(suite->function(f).name(), reduce_args()).get().ok());
    }
  }
  cluster.drain();

  // The fleet aggregate covers every shard's slice of the traffic.
  const ProfileData merged = cluster.merge_profiles();
  ASSERT_EQ(merged.num_functions(), suite->num_functions());
  for (uint32_t f = 0; f < suite->num_functions(); ++f) {
    EXPECT_EQ(merged.function(f).calls, kPerFn)
        << "fleet profile must see every shard's calls of function " << f;
  }
  EXPECT_EQ(cluster.stats().profile_merges, 1u);

  // Seeding must not leak into the shards' own observations: a second
  // merge round over quiesced traffic reports identical counts (a
  // naive implementation would re-absorb the seed and double them).
  const ProfileData again = cluster.merge_profiles();
  for (uint32_t f = 0; f < suite->num_functions(); ++f) {
    EXPECT_EQ(again.function(f).calls, kPerFn)
        << "repeated merges must stay idempotent on quiesced traffic";
  }

  // The exported module carries the fleet profile as annotations.
  const ModuleHandle exported = cluster.export_profile();
  EXPECT_TRUE(has_profile(*exported));
  const ProfileData reread = extract_profile(*exported);
  ASSERT_EQ(reread.num_functions(), suite->num_functions());
  EXPECT_EQ(reread.function(0).calls, kPerFn);
}

TEST(ClusterTest, AutomaticMergeCadenceFires) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(
      Engine::Builder().tiered(/*promote_threshold=*/1000).profiling().build());
  ClusterOptions opts;
  opts.shards = 2;
  opts.routing = RoutingPolicy::LeastLoaded;
  opts.profile_merge_interval = 4;
  opts.memory_init = fill_data;
  Cluster cluster = value_or_die(Cluster::create(
      engine, suite, {{TargetKind::X86Sim, false}}, opts));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        cluster.submit(suite->function(0).name(), reduce_args()).get().ok());
  }
  cluster.drain();
  EXPECT_EQ(cluster.stats().profile_merges, 2u)
      << "a merge round every profile_merge_interval accepted requests";
}

TEST(ClusterTest, OptionValidationListsEveryProblem) {
  ClusterOptions bad;
  bad.shards = 0;
  bad.virtual_nodes = 0;
  bad.load_ewma_alpha = 0.0;

  const Result<Engine> built = Engine::Builder().cluster(bad).build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().size(), 3u);

  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder().build());
  const Result<Cluster> cluster =
      Cluster::create(engine, suite, {{TargetKind::X86Sim, false}}, bad);
  ASSERT_FALSE(cluster.ok());
  EXPECT_EQ(cluster.error().size(), 3u);
}

TEST(ClusterTest, ServeClusterUsesEngineOptions) {
  const ModuleHandle suite = build_reduce_suite();
  ClusterOptions opts;
  opts.shards = 3;
  opts.memory_init = fill_data;
  const Engine engine =
      value_or_die(Engine::Builder().cluster(opts).build());
  Cluster cluster = value_or_die(
      serve_cluster(engine, suite, {{TargetKind::X86Sim, false}}));
  EXPECT_EQ(cluster.num_shards(), 3u);
  Result<SimResult> r =
      cluster.submit(suite->function(0).name(), reduce_args()).get();
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_TRUE(r->ok());
}

}  // namespace
}  // namespace svc
