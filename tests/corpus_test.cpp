// Replays every committed corpus case (tests/corpus/*.minic) through the
// differential harness: each file pins a program -- fuzz-generated or a
// shrunk reproducer of a past divergence -- against the cells recorded in
// its header. A regression that re-introduces a caught bug fails here
// forever after. SVC_CORPUS_DIR is injected by CMake.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/cells.h"
#include "fuzz/differ.h"
#include "fuzz/generator.h"

namespace svc::fuzz {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(SVC_CORPUS_DIR)) {
    if (entry.path().extension() == ".minic") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Corpus, HasCommittedCases) {
  EXPECT_GE(corpus_files().size(), 10u)
      << "tests/corpus/ should carry at least 10 cases -- regenerate with "
         "`svc_fuzz --emit-corpus tests/corpus 12`";
}

TEST(Corpus, EveryCaseParsesAndCarriesCells) {
  for (const auto& path : corpus_files()) {
    const auto program = parse_corpus_file(slurp(path));
    ASSERT_TRUE(program.has_value()) << path;
    EXPECT_FALSE(program->source.empty()) << path;
    EXPECT_FALSE(program->entry.empty()) << path;
    ASSERT_FALSE(program->cells_hint.empty()) << path;
    EXPECT_TRUE(parse_cell_list(program->cells_hint).has_value())
        << path << ": bad cells header '" << program->cells_hint << "'";
  }
}

TEST(Corpus, EveryCaseReplaysWithoutDivergence) {
  DiffRunner runner;
  for (const auto& path : corpus_files()) {
    const auto program = parse_corpus_file(slurp(path));
    ASSERT_TRUE(program.has_value()) << path;
    const auto cells = parse_cell_list(program->cells_hint);
    ASSERT_TRUE(cells.has_value()) << path;
    const DiffResult r = runner.run(*program, *cells);
    EXPECT_TRUE(r.ok()) << path << " cell " << r.cell_key << ": "
                        << r.detail;
  }
}

}  // namespace
}  // namespace svc::fuzz
