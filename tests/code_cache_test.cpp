// The code-management subsystem under the tiered deployment runtime:
// ThreadPool, CodeCache keying/coalescing/eviction, tiered OnlineTarget
// promotion, and the shared-cache Soc. Acceptance properties from ISSUE 2:
//  - tiered/cached execution is bit-identical to eager load() output for
//    every target kind;
//  - concurrent Soc::load warm-up + run_on is race-free (the TSan CI job
//    runs this binary);
//  - same-kind cores on one Soc produce exactly one compile per function
//    (O(cores x functions) -> O(kinds x functions)).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "driver/kernels.h"
#include "driver/offline_compiler.h"
#include "runtime/code_cache.h"
#include "runtime/mapper.h"
#include "runtime/soc.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace svc {
namespace {

using namespace ::svc::testing;

TEST(ThreadPool, RunsJobsAndWaitsIdle) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
  // The pool accepts work again after an idle period.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(JitOptions, CacheKeyCanonicalization) {
  const JitOptions lscan(AllocPolicy::LinearScan, true);
  EXPECT_EQ(lscan.cache_key(),
            JitOptions(AllocPolicy::LinearScan, true).cache_key());
  EXPECT_NE(lscan.cache_key(),
            JitOptions(AllocPolicy::SplitGuided, true).cache_key());
  EXPECT_NE(lscan.cache_key(),
            JitOptions(AllocPolicy::LinearScan, false).cache_key());

  JitOptions custom;
  custom.pipeline = PipelineSpec::parse("stack_to_reg,regalloc");
  ASSERT_TRUE(custom.pipeline.has_value());
  EXPECT_NE(custom.cache_key(), lscan.cache_key());
  // The default-pipeline sentinel is spelled out, not empty.
  EXPECT_NE(lscan.cache_key().find("default"), std::string::npos);
}

CodeCacheKey key_for(const Module& m, uint32_t idx, TargetKind kind,
                     const JitOptions& options = {}) {
  return CodeCacheKey{m.id(), idx, kind, options.cache_key()};
}

TEST(CodeCache, HitMissAndKeying) {
  Module m;
  m.add_function(build_scalar_saxpy());
  m.add_function(build_high_pressure());
  const JitCompiler jit(target_desc(TargetKind::X86Sim));
  CodeCache cache;
  const auto compile0 = [&] { return jit.compile(m, 0); };

  const auto first = cache.get_or_compile(key_for(m, 0, TargetKind::X86Sim),
                                          compile0);
  const auto again = cache.get_or_compile(key_for(m, 0, TargetKind::X86Sim),
                                          compile0);
  EXPECT_EQ(first.get(), again.get());  // same artifact object
  EXPECT_EQ(cache.stats().get("cache.misses"), 1);
  EXPECT_EQ(cache.stats().get("cache.hits"), 1);
  EXPECT_EQ(cache.stats().get("cache.compiles"), 1);

  // Different function, target kind, or options: distinct entries.
  (void)cache.get_or_compile(key_for(m, 1, TargetKind::X86Sim),
                             [&] { return jit.compile(m, 1); });
  const JitCompiler sparc(target_desc(TargetKind::SparcSim));
  (void)cache.get_or_compile(key_for(m, 0, TargetKind::SparcSim),
                             [&] { return sparc.compile(m, 0); });
  const JitOptions naive(AllocPolicy::NaiveOnline, true);
  const JitCompiler naive_jit(target_desc(TargetKind::X86Sim), naive);
  (void)cache.get_or_compile(key_for(m, 0, TargetKind::X86Sim, naive),
                             [&] { return naive_jit.compile(m, 0); });
  EXPECT_EQ(cache.num_entries(), 4u);
  EXPECT_EQ(cache.stats().get("cache.compiles"), 4);
  EXPECT_EQ(cache.stats().get("cache.bytes"),
            static_cast<int64_t>(cache.code_bytes()));
}

TEST(CodeCache, LruEvictionRespectsBudget) {
  Module m;
  m.add_function(build_scalar_saxpy());
  m.add_function(build_high_pressure());
  m.add_function(build_branchy_max_u8());
  const JitCompiler jit(target_desc(TargetKind::SparcSim));
  CodeCache cache;
  std::vector<size_t> bytes;
  for (uint32_t i = 0; i < 3; ++i) {
    bytes.push_back(cache
                        .get_or_compile(key_for(m, i, TargetKind::SparcSim),
                                        [&] { return jit.compile(m, i); })
                        ->code.code_bytes());
  }
  ASSERT_EQ(cache.num_entries(), 3u);

  // Shrink so only the two most recent fit: function 0 (LRU tail) goes.
  cache.set_code_budget(bytes[1] + bytes[2]);
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_EQ(cache.stats().get("cache.evictions"), 1);
  EXPECT_EQ(cache.peek(key_for(m, 0, TargetKind::SparcSim)), nullptr);
  EXPECT_NE(cache.peek(key_for(m, 2, TargetKind::SparcSim)), nullptr);
  EXPECT_LE(cache.code_bytes(), bytes[1] + bytes[2]);

  // An evicted key recompiles on demand (a new miss).
  (void)cache.get_or_compile(key_for(m, 0, TargetKind::SparcSim),
                             [&] { return jit.compile(m, 0); });
  EXPECT_EQ(cache.stats().get("cache.misses"), 4);
  // The single-entry floor: a budget below any artifact keeps the most
  // recent entry resident rather than thrashing to empty.
  cache.set_code_budget(1);
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_NE(cache.peek(key_for(m, 0, TargetKind::SparcSim)), nullptr);
}

TEST(CodeCache, ConcurrentSameKeyCompilesOnce) {
  Module m;
  m.add_function(build_scalar_saxpy());
  const JitCompiler jit(target_desc(TargetKind::X86Sim));
  CodeCache cache;
  std::atomic<int> compiles{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<CodeCache::Artifact> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] =
          cache.get_or_compile(key_for(m, 0, TargetKind::X86Sim), [&] {
            compiles.fetch_add(1, std::memory_order_relaxed);
            return jit.compile(m, 0);
          });
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(cache.stats().get("cache.compiles"), 1);
  EXPECT_EQ(cache.stats().get("cache.misses"), 1);
  EXPECT_EQ(cache.stats().get("cache.hits"), kThreads - 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
}

// --- Tiered OnlineTarget -------------------------------------------------

/// Runs `name` and compares return value and memory image against the
/// reference interpreter.
void expect_matches_interpreter(OnlineTarget& target, const Module& m,
                                std::string_view name,
                                const std::vector<Value>& args,
                                const std::function<void(Memory&)>& setup) {
  Memory ref_mem(1 << 20);
  setup(ref_mem);
  Interpreter interp(m, ref_mem);
  const ExecResult ref = interp.run(name, args);
  ASSERT_TRUE(ref.ok()) << ref.trap_message();

  Memory mem(1 << 20);
  setup(mem);
  const SimResult got = target.run(name, args, mem);
  ASSERT_TRUE(got.ok());
  if (ref.value.has_value() && ref.value->type != Type::Void) {
    EXPECT_EQ(*ref.value, got.value) << target.desc().name;
  }
  EXPECT_TRUE(std::equal(ref_mem.bytes().begin(), ref_mem.bytes().end(),
                         mem.bytes().begin()))
      << target.desc().name << ": memory diverged";
}

TEST(TieredTarget, BitIdenticalToEagerForEveryTargetKind) {
  Module m;
  m.add_function(build_scalar_saxpy());
  m.add_function(build_vector_dot_f32());
  expect_verifies(m);
  const auto setup = [](Memory& mem) {
    for (uint32_t i = 0; i < 64; ++i) {
      mem.write_f32(1024 + 4 * i, 0.5f + static_cast<float>(i));
      mem.write_f32(4096 + 4 * i, 1.5f * static_cast<float>(i));
    }
  };
  const std::vector<Value> saxpy_args = {
      Value::make_f32(2.0f), Value::make_i32(1024), Value::make_i32(4096),
      Value::make_i32(64)};
  const std::vector<Value> dot_args = {Value::make_i32(1024),
                                       Value::make_i32(4096),
                                       Value::make_i32(16)};

  for (const TargetKind kind : all_targets()) {
    // Eager reference output for this kind.
    OnlineTarget eager(kind);
    load_or_die(eager, m);
    Memory eager_mem(1 << 20);
    setup(eager_mem);
    const SimResult eager_dot = eager.run("vdot_f32", dot_args, eager_mem);
    ASSERT_TRUE(eager_dot.ok());

    // Tier 1 from call one (synchronous promotion at threshold 1).
    OnlineTarget::Config hot;
    hot.mode = LoadMode::Tiered;
    OnlineTarget tiered(kind, {}, hot);
    load_or_die(tiered, m);
    expect_matches_interpreter(tiered, m, "saxpy", saxpy_args, setup);
    expect_matches_interpreter(tiered, m, "vdot_f32", dot_args, setup);

    // Tier 0 throughout (threshold never reached): still identical.
    OnlineTarget::Config cold;
    cold.mode = LoadMode::Tiered;
    cold.promote_threshold = 1000;
    OnlineTarget interp_only(kind, {}, cold);
    load_or_die(interp_only, m);
    expect_matches_interpreter(interp_only, m, "saxpy", saxpy_args, setup);
    expect_matches_interpreter(interp_only, m, "vdot_f32", dot_args, setup);
    EXPECT_EQ(interp_only.jitted_calls(), 0u);

    // And the promoted target's simulated cycles equal eager's: the same
    // artifact bits run in both.
    Memory tiered_mem(1 << 20);
    setup(tiered_mem);
    const SimResult tiered_dot = tiered.run("vdot_f32", dot_args, tiered_mem);
    ASSERT_TRUE(tiered_dot.ok());
    EXPECT_FALSE(tiered_dot.interpreted);
    EXPECT_EQ(tiered_dot.stats.cycles, eager_dot.stats.cycles);
    EXPECT_EQ(tiered_dot.value, eager_dot.value);
  }
}

TEST(TieredTarget, PromotionThresholdCountsCalls) {
  Module m = build_call_module();
  expect_verifies(m);
  OnlineTarget::Config config;
  config.mode = LoadMode::Tiered;
  config.promote_threshold = 3;
  OnlineTarget target(TargetKind::X86Sim, {}, config);
  load_or_die(target, m);
  Memory mem(1 << 16);
  const std::vector<Value> args = {Value::make_i32(5)};

  // Calls 1 and 2: below threshold, no compile requested, interpreted.
  for (int call = 0; call < 2; ++call) {
    const SimResult r = target.run("combine", args, mem);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.interpreted);
    EXPECT_EQ(r.value.i32, 5 + 2 + 3 + 4);
    EXPECT_GT(r.stats.cycles, 0u);  // interpreter cost model charges steps
  }
  const auto combine_idx = m.find_function("combine");
  ASSERT_TRUE(combine_idx.has_value());
  EXPECT_FALSE(target.jit_ready(*combine_idx));

  // Call 3 reaches the threshold; with no pool the compile is synchronous,
  // and promotion covers the callee (add2) too.
  const SimResult r3 = target.run("combine", args, mem);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3.interpreted);
  EXPECT_EQ(r3.value.i32, 14);
  EXPECT_TRUE(target.jit_ready(*combine_idx));
  EXPECT_EQ(target.interpreted_calls(), 2u);
  EXPECT_EQ(target.jitted_calls(), 1u);
  EXPECT_GT(target.code_bytes(), 0u);
}

TEST(TieredTarget, BackgroundPromotionViaPool) {
  Module m;
  m.add_function(build_high_pressure());
  expect_verifies(m);
  ThreadPool pool(2);
  CodeCache cache;
  OnlineTarget::Config config;
  config.mode = LoadMode::Tiered;
  config.cache = &cache;
  config.pool = &pool;
  OnlineTarget target(TargetKind::PpcSim, {}, config);
  load_or_die(target, m);

  Memory mem(1 << 16);
  for (uint32_t i = 0; i < 16; ++i) mem.write_i32(4 * i, 3);
  // First call requests the background compile; whichever tier serves it,
  // the value must be right.
  const SimResult first =
      target.run("pressure16", {Value::make_i32(0)}, mem);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value.i32, 48);

  pool.wait_idle();
  ASSERT_TRUE(target.jit_ready(0));
  const SimResult warm = target.run("pressure16", {Value::make_i32(0)}, mem);
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm.interpreted);
  EXPECT_EQ(warm.value.i32, 48);
  EXPECT_EQ(cache.stats().get("cache.compiles"), 1);
}

// --- Shared-cache Soc ----------------------------------------------------

TEST(SocCache, SameKindCoresCompileEachFunctionOnce) {
  const Module m = value_or_die(compile_module(fir_source()));  // fir4, gain, energy
  const int64_t fns = static_cast<int64_t>(m.num_functions());
  // Four cores, two kinds: compile count must be per kind, not per core.
  Soc soc({{TargetKind::X86Sim, false},
           {TargetKind::X86Sim, false},
           {TargetKind::PpcSim, false},
           {TargetKind::PpcSim, false}},
          1 << 20);
  load_or_die(soc, m);

  const Statistics stats = soc.code_cache().stats();
  EXPECT_EQ(stats.get("cache.compiles"), 2 * fns);
  EXPECT_EQ(stats.get("cache.misses"), 2 * fns);
  EXPECT_EQ(stats.get("cache.hits"), 2 * fns);  // second core of each kind
  EXPECT_EQ(stats.get("cache.evictions"), 0);

  // Same-kind cores run the same bits; different kinds differ.
  EXPECT_EQ(soc.core(0).code_bytes(), soc.core(1).code_bytes());
  EXPECT_EQ(soc.core(2).code_bytes(), soc.core(3).code_bytes());
  for (uint32_t i = 0; i < 64; ++i) {
    soc.memory().write_f32(256 + 4 * i, 1.0f);
  }
  const SimResult a = soc.run_on(0, "energy",
                                 {Value::make_i32(256), Value::make_i32(64)});
  const SimResult b = soc.run_on(1, "energy",
                                 {Value::make_i32(256), Value::make_i32(64)});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

TEST(SocCache, PrefetchWarmsTopRankedCoreOnly) {
  const Module m = value_or_die(compile_module(fir_source()));
  SocOptions options;
  options.mode = LoadMode::Tiered;
  options.prefetch = true;
  options.pool_threads = 2;
  Soc soc({{TargetKind::PpcSim, false}, {TargetKind::SpuSim, true}}, 1 << 20,
          options);
  load_or_die(soc, m);
  soc.wait_warmup();

  // Prefetch compiled each function exactly once, on one core.
  EXPECT_EQ(soc.code_cache().stats().get("cache.compiles"),
            static_cast<int64_t>(m.num_functions()));

  // The top-ranked core for each function answers its first call in JITed
  // code -- no first-call latency on the core the mapper picked.
  for (uint32_t f = 0; f < m.num_functions(); ++f) {
    const size_t best = choose_core(soc, m.function(f));
    EXPECT_TRUE(soc.core(best).jit_ready(f)) << m.function(f).name();
  }
}

TEST(SocCache, ConcurrentWarmupAndRunIsRaceFree) {
  // The TSan acceptance scenario: tiered load with background prefetch in
  // flight while several threads hammer run_on across cores -- with
  // tier-0 profiling on and tier-2 re-specialization racing the traffic,
  // so the profile merge and the copy-on-write code image are exercised
  // under contention too. pressure16 only reads memory, so concurrent
  // simulations share it safely.
  Module m;
  m.add_function(build_high_pressure());
  expect_verifies(m);

  SocOptions options;
  options.mode = LoadMode::Tiered;
  options.prefetch = true;
  options.profile = true;
  options.tier2_threshold = 3;
  options.pool_threads = 3;
  Soc soc({{TargetKind::X86Sim, false},
           {TargetKind::X86Sim, false},
           {TargetKind::PpcSim, false},
           {TargetKind::SpuSim, true}},
          1 << 16, options);
  for (uint32_t i = 0; i < 16; ++i) soc.memory().write_i32(4 * i, 7);
  load_or_die(soc, m);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int call = 0; call < kCallsPerThread; ++call) {
        const size_t core = static_cast<size_t>(t) % soc.num_cores();
        const SimResult r =
            soc.run_on(core, "pressure16", {Value::make_i32(0)});
        if (!r.ok() || r.value.i32 != 16 * 7) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);

  soc.wait_warmup();
  // Steady state: every core answers in JITed code and the total call
  // count reconciles.
  uint64_t interpreted = 0, jitted = 0;
  for (size_t c = 0; c < soc.num_cores(); ++c) {
    const SimResult r = soc.run_on(c, "pressure16", {Value::make_i32(0)});
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.interpreted);
    interpreted += soc.core(c).interpreted_calls();
    jitted += soc.core(c).jitted_calls();
  }
  EXPECT_EQ(interpreted + jitted,
            static_cast<uint64_t>(kThreads * kCallsPerThread) +
                soc.num_cores());
}

TEST(SocCache, DestructionWithInFlightCompilesIsSafe) {
  // Tear a tiered Soc down immediately after prefetch enqueued background
  // jobs: ~OnlineTarget must drain them while the pool is still alive
  // (TSan/ASan would flag a use-after-free regression here).
  const Module m = value_or_die(compile_module(fir_source()));
  for (int round = 0; round < 5; ++round) {
    SocOptions options;
    options.mode = LoadMode::Tiered;
    options.prefetch = true;
    options.pool_threads = 2;
    Soc soc({{TargetKind::X86Sim, false}, {TargetKind::PpcSim, false}},
            1 << 16, options);
    load_or_die(soc, m);
    // No wait_warmup(): the Soc dies with compiles in flight.
  }
}

TEST(TieredTarget, QueriesBeforeLoadAreSafe) {
  OnlineTarget::Config config;
  config.mode = LoadMode::Tiered;
  OnlineTarget target(TargetKind::X86Sim, {}, config);
  EXPECT_FALSE(target.jit_ready(0));
  target.request_compile(0);  // no-op, not UB
  EXPECT_EQ(target.code_bytes(), 0u);
}

TEST(SocCache, LoadFailsFastOnInvalidModule) {
  Module bad;
  Function broken("broken", {{}, Type::I32});
  broken.add_block();  // empty entry block: no terminator -> invalid
  bad.add_function(std::move(broken));

  // An invalid module is a Result failure (structured diagnostics), not a
  // fatal -- and the target never adopts it.
  OnlineTarget target(TargetKind::X86Sim);
  const Result<void> target_load = target.load_module(borrow_module(bad));
  EXPECT_FALSE(target_load.ok());
  EXPECT_NE(target_load.error_text().find("while loading module"),
            std::string::npos);
  EXPECT_FALSE(target.jit_ready(0));

  Soc soc({{TargetKind::X86Sim, false}}, 1 << 12);
  const Result<void> soc_load = soc.load_module(borrow_module(bad));
  EXPECT_FALSE(soc_load.ok());
  EXPECT_EQ(soc.module(), nullptr);
}

}  // namespace
}  // namespace svc
