// Self-test of the differential fuzz harness (src/fuzz/, docs/FUZZING.md):
// generator determinism and well-formedness, cell canonicalization and
// matrix bounding, zero divergence on the real runtime, the planted
// miscompile caught and shrunk to a tiny committed-style reproducer,
// corpus round-trips, frontend robustness under near-miss mutants, and
// serializer byte-identity over fuzzed (and profile-annotated) modules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/serializer.h"
#include "driver/offline_compiler.h"
#include "fuzz/cells.h"
#include "fuzz/differ.h"
#include "fuzz/generator.h"
#include "fuzz/shrink.h"
#include "vm/interpreter.h"
#include "vm/profile.h"

namespace svc::fuzz {
namespace {

// ------------------------------------------------------------ generator --

TEST(FuzzGenerator, DeterministicPerSeed) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const GeneratedProgram a = generate_program(seed);
    const GeneratedProgram b = generate_program(seed);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.entry, b.entry);
    EXPECT_EQ(a.fill_seed, b.fill_seed);
    ASSERT_EQ(a.args.size(), b.args.size());
    EXPECT_EQ(a.features.est_cost, b.features.est_cost);
  }
  EXPECT_NE(generate_program(1).source, generate_program(2).source);
}

TEST(FuzzGenerator, ProgramsCompileAndTerminateTrapFree) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const GeneratedProgram p = generate_program(seed);
    Result<Module> m = compile_module(p.source);
    ASSERT_TRUE(m.ok()) << "seed " << seed << ":\n"
                        << m.error_text() << "\n"
                        << p.source;
    Memory mem(1u << 20);
    p.init_memory(mem);
    Interpreter interp(m.value(), mem);
    interp.set_dispatch(DispatchKind::Switch);
    interp.set_step_budget(uint64_t{1} << 24);
    const ExecResult r = interp.run(p.entry, p.arg_values());
    EXPECT_EQ(r.trap, TrapKind::None) << "seed " << seed << "\n" << p.source;
    // The static cost model is an upper bound on real dynamic steps.
    EXPECT_LE(r.steps, GenOptions{}.cost_budget) << "seed " << seed;
  }
}

TEST(FuzzGenerator, MemoryFillIsDeterministic) {
  const GeneratedProgram p = generate_program(3);
  Memory a(1u << 20);
  Memory b(1u << 20);
  p.init_memory(a);
  p.init_memory(b);
  ASSERT_TRUE(std::equal(a.bytes().begin(), a.bytes().end(),
                         b.bytes().begin(), b.bytes().end()));
}

// ---------------------------------------------------------------- cells --

TEST(FuzzCells, CanonicalizeCollapsesDegenerateAxes) {
  Cell c;
  c.target = TargetKind::X86Sim;
  c.tier = TierMode::Tiered;
  c.dispatch = DispatchKind::Switch;
  c.fusion = true;  // fusion is a threaded-engine feature
  EXPECT_FALSE(canonicalize(c).fusion);

  Cell e;
  e.target = TargetKind::PpcSim;
  e.tier = TierMode::Eager;
  e.dispatch = DispatchKind::Threaded;
  e.fusion = true;  // no tier 0 -> no dispatch axis at all
  const Cell ce = canonicalize(e);
  EXPECT_EQ(ce.dispatch, DispatchKind::Switch);
  EXPECT_FALSE(ce.fusion);

  Cell w;
  w.target = TargetKind::SpuSim;
  w.tier = TierMode::Tiered;
  w.warm_boot = true;  // warm cells exercise the AOT story: eager
  EXPECT_EQ(canonicalize(w).tier, TierMode::Eager);

  Cell p;
  p.target = TargetKind::X86Sim;
  p.tier = TierMode::Eager;
  p.offline_pipeline = "fold,fold,dce,cleanup,cleanup";
  EXPECT_EQ(canonicalize(p).offline_pipeline, "fold,dce,cleanup");
}

TEST(FuzzCells, KeyParsesBackToItself) {
  ProgramFeatures features;
  features.loops = 2;
  features.kernel_loops = 1;
  features.stmts = 9;
  for (const Cell& c : build_cell_matrix(11, features, 16)) {
    const auto parsed = parse_cell(c.key());
    ASSERT_TRUE(parsed.has_value()) << c.key();
    EXPECT_EQ(parsed->key(), c.key());
  }
  EXPECT_FALSE(parse_cell("x86sim/eager").has_value());
  EXPECT_FALSE(parse_cell("nosuch/eager/linear/-/off=default/jit=default")
                   .has_value());
}

TEST(FuzzCells, MatrixDeterministicDedupedAndBounded) {
  ProgramFeatures features;
  features.loops = 1;
  features.stmts = 7;
  features.est_cost = 1u << 12;
  const std::vector<Cell> a = build_cell_matrix(7, features, 12);
  const std::vector<Cell> b = build_cell_matrix(7, features, 12);
  EXPECT_EQ(render_cell_list(a), render_cell_list(b));
  EXPECT_LE(a.size(), 12u);
  std::vector<std::string> keys;
  for (const Cell& c : a) keys.push_back(c.key());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "duplicate cell keys in " << render_cell_list(a);

  // Feature-driven pruning: loop-free programs buy no pipeline cells,
  // expensive ones no tier-2 cells.
  ProgramFeatures costly;
  costly.loops = 3;
  costly.est_cost = 1u << 20;
  for (const Cell& c : build_cell_matrix(7, costly, 32)) {
    EXPECT_NE(c.tier, TierMode::Tier2) << c.key();
  }
}

// --------------------------------------------------------- differential --

TEST(FuzzDiffer, ZeroDivergenceOnRealRuntime) {
  DiffRunner runner;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const GeneratedProgram p = generate_program(seed);
    const std::vector<Cell> cells = build_cell_matrix(seed, p.features, 8);
    const DiffResult r = runner.run(p, cells);
    EXPECT_TRUE(r.ok()) << "seed " << seed << " cell " << r.cell_key << ": "
                        << r.detail << "\n"
                        << p.source;
  }
}

TEST(FuzzDiffer, PlantedMiscompileIsCaughtAndShrunk) {
  DiffOptions opts;
  opts.plant_miscompile = true;
  DiffRunner planted(opts);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const GeneratedProgram p = generate_program(seed);
    const std::vector<Cell> cells = build_cell_matrix(seed, p.features, 8);
    const DiffResult r = planted.run(p, cells);
    ASSERT_FALSE(r.internal_error) << r.detail;
    if (!r.diverged) continue;  // some programs never exercise a signed <

    const auto shrunk = shrink(p, cells, planted);
    ASSERT_TRUE(shrunk.has_value());
    EXPECT_LE(shrunk->lines_after, 15u) << shrunk->reduced.source;
    EXPECT_LT(shrunk->lines_after, shrunk->lines_before);
    EXPECT_FALSE(shrunk->detail.empty());

    // The reproducer is a corpus file that replays standalone.
    const std::string repro = render_reproducer(*shrunk);
    const auto parsed = parse_corpus_file(repro);
    ASSERT_TRUE(parsed.has_value());
    const auto hint = parse_cell_list(parsed->cells_hint);
    ASSERT_TRUE(hint.has_value());
    EXPECT_TRUE(planted.run_cell(*parsed, hint->front()).has_value());
    // ...and the un-planted runtime agrees with the oracle on it.
    DiffRunner clean;
    EXPECT_FALSE(clean.run_cell(*parsed, hint->front()).has_value());
    return;  // one full catch-and-shrink cycle is the contract
  }
  FAIL() << "no seed in 1..20 tripped the planted miscompile";
}

TEST(FuzzDiffer, RunawayProgramsAreOutOfContract) {
  // A shrink-candidate-shaped infinite loop: the differ must classify it
  // as out of contract (oracle step budget), not hang or "diverge".
  GeneratedProgram p = generate_program(1);
  p.source =
      "fn entry(x: i32) -> i32 {\n"
      "  var a: i32 = x;\n"
      "  var i0: i32 = 0;\n"
      "  while (i0 < 10) {\n"
      "    a = a + 1;\n"
      "  }\n"
      "  return a;\n"
      "}\n";
  p.entry = "entry";
  p.args.clear();
  ArgSpec arg;
  arg.value = Value::make_i32(1);
  p.args.push_back(arg);
  DiffOptions opts;
  opts.step_budget = 1u << 16;
  DiffRunner runner(opts);
  Cell cell;
  cell.target = TargetKind::X86Sim;
  cell.tier = TierMode::Eager;
  EXPECT_FALSE(runner.run_cell(p, canonicalize(cell)).has_value());
  const DiffResult r = runner.run(p, {canonicalize(cell)});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.cells_run, 0u) << "out-of-contract program reached a cell";
}

// --------------------------------------------------------------- corpus --

TEST(FuzzCorpus, RenderParseRoundTrip) {
  GeneratedProgram p = generate_program(9);
  p.cells_hint = "x86sim/eager/linear/-/off=default/jit=default";
  const std::string file = render_corpus_file(p);
  const auto q = parse_corpus_file(file);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->seed, p.seed);
  EXPECT_EQ(q->fill_seed, p.fill_seed);
  EXPECT_EQ(q->entry, p.entry);
  EXPECT_EQ(q->source, p.source);
  EXPECT_EQ(q->cells_hint, p.cells_hint);
  ASSERT_EQ(q->args.size(), p.args.size());
  for (size_t i = 0; i < p.args.size(); ++i) {
    EXPECT_EQ(q->args[i].is_ptr, p.args[i].is_ptr);
    EXPECT_EQ(q->args[i].value.type, p.args[i].value.type);
  }
  // Round-trip is a fixed point: re-rendering is byte-identical.
  EXPECT_EQ(render_corpus_file(*q), file);
  EXPECT_FALSE(parse_corpus_file("// seed: not-a-number\n// ---\n")
                   .has_value());
}

// ------------------------------------------------------------- frontend --

TEST(FuzzFrontend, NearMissMutantsAreRejectedGracefully) {
  size_t rejected = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const GeneratedProgram p = generate_program(seed);
    for (uint64_t m = 0; m < 4; ++m) {
      const std::string mutant = mutate_source(p.source, seed * 16 + m);
      // Must never crash; either outcome (compile or diagnostic) is fine.
      const Result<Module> r = compile_module(mutant);
      if (!r.ok()) {
        ++rejected;
        EXPECT_FALSE(r.error_text().empty());
      }
    }
  }
  // Near-miss damage should usually be caught -- if nothing is ever
  // rejected the mutator is not actually damaging programs.
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzFrontend, PathologicalNestingIsRejectedNotOverflowed) {
  // 300 levels beats the parser's depth guard; the required outcome is a
  // diagnostic, not a recursion-driven stack overflow.
  std::string deep_expr = "fn f() -> i32 { return ";
  for (int i = 0; i < 300; ++i) deep_expr += '(';
  deep_expr += '1';
  for (int i = 0; i < 300; ++i) deep_expr += ')';
  deep_expr += "; }\n";
  const Result<Module> a = compile_module(deep_expr);
  EXPECT_FALSE(a.ok());

  std::string deep_block = "fn g() -> i32 {\n";
  for (int i = 0; i < 300; ++i) deep_block += "if (1 < 2) {\n";
  deep_block += "return 1;\n";
  for (int i = 0; i < 300; ++i) deep_block += "}\n";
  deep_block += "return 0;\n}\n";
  const Result<Module> b = compile_module(deep_block);
  EXPECT_FALSE(b.ok());
}

// ----------------------------------------------------------- serializer --

TEST(FuzzSerializer, RoundTripIsByteIdenticalOnFuzzedModules) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const GeneratedProgram p = generate_program(seed);
    Result<Module> m = compile_module(p.source);
    ASSERT_TRUE(m.ok()) << m.error_text();

    const std::vector<uint8_t> image = serialize_module(m.value());
    DeserializeResult back = deserialize_module(image);
    ASSERT_TRUE(back.module.has_value()) << "seed " << seed << ": "
                                         << back.error;
    EXPECT_EQ(serialize_module(*back.module), image) << "seed " << seed;
  }
}

TEST(FuzzSerializer, RoundTripPreservesProfileAnnotations) {
  const GeneratedProgram p = generate_program(4);
  Result<Module> m = compile_module(p.source);
  ASSERT_TRUE(m.ok()) << m.error_text();

  // Collect a real profile by running the program under the oracle.
  Memory mem(1u << 20);
  p.init_memory(mem);
  ProfileData profile(m.value().num_functions());
  Interpreter interp(m.value(), mem);
  interp.set_dispatch(DispatchKind::Switch);
  interp.set_profile(&profile);
  ASSERT_EQ(interp.run(p.entry, p.arg_values()).trap, TrapKind::None);
  ASSERT_FALSE(profile.empty());

  const Module annotated = attach_profile(m.value(), profile);
  ASSERT_TRUE(has_profile(annotated));
  const std::vector<uint8_t> image = serialize_module(annotated);
  DeserializeResult back = deserialize_module(image);
  ASSERT_TRUE(back.module.has_value()) << back.error;
  EXPECT_TRUE(has_profile(*back.module));
  EXPECT_EQ(serialize_module(*back.module), image);
}

}  // namespace
}  // namespace svc::fuzz
