// Shared helpers for the test suite: hand-built bytecode kernels (used
// before/alongside the MiniC frontend) and a differential-execution
// harness comparing the reference interpreter against every JIT target
// and allocation policy.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "bytecode/builder.h"
#include "bytecode/verifier.h"
#include "jit/jit_compiler.h"
#include "support/result.h"
#include "support/rng.h"
#include "targets/simulator.h"
#include "targets/target_registry.h"
#include "vm/interpreter.h"

namespace svc::testing {

/// Unwraps a Result<T>, aborting with its diagnostics on failure: the
/// one-line bridge between the Result-based API and tests feeding
/// known-good input, e.g. `value_or_die(compile_module(src))`.
template <typename T>
[[nodiscard]] T value_or_die(Result<T> result) {
  if (!result.ok()) fatal("value_or_die:\n" + result.error_text());
  return std::move(result).value();
}

inline void value_or_die(Result<void> result) {
  if (!result.ok()) fatal("value_or_die:\n" + result.error_text());
}

/// Loads `module` into an OnlineTarget / Soc with borrowed lifetime (the
/// test keeps the module alive), aborting on error.
template <typename Runtime>
void load_or_die(Runtime& runtime, const Module& module) {
  value_or_die(runtime.load_module(borrow_module(module)));
}

/// Scalar saxpy: y[i] = a * x[i] + y[i] over f32 arrays (i32 addresses).
/// Params: a(f32), x(ptr), y(ptr), n(i32).
inline Function build_scalar_saxpy() {
  FunctionBuilder b("saxpy",
                    {{Type::F32, Type::I32, Type::I32, Type::I32}, Type::Void});
  const uint32_t a = 0, x = 1, y = 2, n = 3;
  const uint32_t i = b.add_local(Type::I32);
  const uint32_t addr_y = b.add_local(Type::I32);

  const uint32_t head = b.new_block();
  const uint32_t body = b.new_block();
  const uint32_t done = b.new_block();

  b.const_i32(0).set(i).jump(head);

  b.switch_to(head);
  b.get(i).get(n).op(Opcode::LtSI32).br_if(body, done);

  b.switch_to(body);
  // addr_y = y + 4*i
  b.get(y).get(i).const_i32(4).op(Opcode::MulI32).op(Opcode::AddI32)
      .set(addr_y);
  // *addr_y = a * x[4*i] + *addr_y
  b.get(addr_y);
  b.get(a);
  b.get(x).get(i).const_i32(4).op(Opcode::MulI32).op(Opcode::AddI32)
      .load(Opcode::LoadF32);
  b.op(Opcode::MulF32);
  b.get(addr_y).load(Opcode::LoadF32);
  b.op(Opcode::AddF32);
  b.store(Opcode::StoreF32);
  b.get(i).const_i32(1).op(Opcode::AddI32).set(i).jump(head);

  b.switch_to(done);
  b.ret();
  return b.take();
}

/// Vectorized u8 max reduction using the portable builtins, with a v128
/// accumulator local (exercises de-vectorization of lane-written locals).
/// Params: p(ptr), nv(i32 = number of 16-byte vectors). Returns i32 max.
inline Function build_vector_max_u8() {
  FunctionBuilder b("vmax_u8", {{Type::I32, Type::I32}, Type::I32});
  const uint32_t p = 0, nv = 1;
  const uint32_t vm = b.add_local(Type::V128);
  const uint32_t i = b.add_local(Type::I32);

  const uint32_t head = b.new_block();
  const uint32_t body = b.new_block();
  const uint32_t done = b.new_block();

  b.op(Opcode::VZero).set(vm).const_i32(0).set(i).jump(head);

  b.switch_to(head);
  b.get(i).get(nv).op(Opcode::LtSI32).br_if(body, done);

  b.switch_to(body);
  b.get(vm);
  b.get(p).get(i).const_i32(16).op(Opcode::MulI32).op(Opcode::AddI32)
      .load(Opcode::LoadV128);
  b.op(Opcode::VMaxU8).set(vm);
  b.get(i).const_i32(1).op(Opcode::AddI32).set(i).jump(head);

  b.switch_to(done);
  b.get(vm).op(Opcode::VRMaxU8).ret();
  return b.take();
}

/// Vectorized f32 dot-product-ish kernel: sum += rsum(x[v] * y[v]).
/// Params: x(ptr), y(ptr), nv(i32 vectors). Returns f32.
inline Function build_vector_dot_f32() {
  FunctionBuilder b("vdot_f32", {{Type::I32, Type::I32, Type::I32}, Type::F32});
  const uint32_t x = 0, y = 1, nv = 2;
  const uint32_t acc = b.add_local(Type::F32);
  const uint32_t i = b.add_local(Type::I32);

  const uint32_t head = b.new_block();
  const uint32_t body = b.new_block();
  const uint32_t done = b.new_block();

  b.const_f32(0.0f).set(acc).const_i32(0).set(i).jump(head);

  b.switch_to(head);
  b.get(i).get(nv).op(Opcode::LtSI32).br_if(body, done);

  b.switch_to(body);
  b.get(acc);
  b.get(x).get(i).const_i32(16).op(Opcode::MulI32).op(Opcode::AddI32)
      .load(Opcode::LoadV128);
  b.get(y).get(i).const_i32(16).op(Opcode::MulI32).op(Opcode::AddI32)
      .load(Opcode::LoadV128);
  b.op(Opcode::VMulF32).op(Opcode::VRSumF32).op(Opcode::AddF32).set(acc);
  b.get(i).const_i32(1).op(Opcode::AddI32).set(i).jump(head);

  b.switch_to(done);
  b.get(acc).ret();
  return b.take();
}

/// High register pressure: loads p[0..15] (i32 each) into 16 locals, then
/// sums them in reverse. Forces spills on register-starved targets.
inline Function build_high_pressure() {
  FunctionBuilder b("pressure16", {{Type::I32}, Type::I32});
  const uint32_t p = 0;
  std::vector<uint32_t> locals;
  for (int k = 0; k < 16; ++k) locals.push_back(b.add_local(Type::I32));
  for (int k = 0; k < 16; ++k) {
    b.get(p).load(Opcode::LoadI32, 4 * k).set(locals[k]);
  }
  b.get(locals[15]);
  for (int k = 14; k >= 0; --k) {
    b.get(locals[k]).op(Opcode::AddI32);
  }
  b.ret();
  return b.take();
}

/// Branchy scalar max over bytes (data-dependent branch).
inline Function build_branchy_max_u8() {
  FunctionBuilder b("smax_u8", {{Type::I32, Type::I32}, Type::I32});
  const uint32_t p = 0, n = 1;
  const uint32_t m = b.add_local(Type::I32);
  const uint32_t i = b.add_local(Type::I32);
  const uint32_t v = b.add_local(Type::I32);

  const uint32_t head = b.new_block();
  const uint32_t body = b.new_block();
  const uint32_t update = b.new_block();
  const uint32_t next = b.new_block();
  const uint32_t done = b.new_block();

  b.const_i32(0).set(m).const_i32(0).set(i).jump(head);

  b.switch_to(head);
  b.get(i).get(n).op(Opcode::LtSI32).br_if(body, done);

  b.switch_to(body);
  b.get(p).get(i).op(Opcode::AddI32).load(Opcode::LoadI8U).set(v);
  b.get(v).get(m).op(Opcode::GtSI32).br_if(update, next);

  b.switch_to(update);
  b.get(v).set(m).jump(next);

  b.switch_to(next);
  b.get(i).const_i32(1).op(Opcode::AddI32).set(i).jump(head);

  b.switch_to(done);
  b.get(m).ret();
  return b.take();
}

/// add(a, b) callee plus a caller combining nested calls.
inline Module build_call_module() {
  Module m;
  {
    FunctionBuilder b("add2", {{Type::I32, Type::I32}, Type::I32});
    b.get(0).get(1).op(Opcode::AddI32).ret();
    m.add_function(b.take());
  }
  {
    FunctionBuilder b("combine", {{Type::I32}, Type::I32});
    b.get(0).const_i32(2).call(0);
    b.const_i32(3).const_i32(4).call(0);
    b.call(0).ret();
    m.add_function(b.take());
  }
  return m;
}

/// Verifies `module`, failing the test with diagnostics on error.
inline void expect_verifies(const Module& module) {
  DiagnosticEngine diags;
  ASSERT_TRUE(verify_module(module, diags)) << diags.dump();
}

/// Runs `fn` in the interpreter and on every target under `policy`,
/// expecting identical return values and identical memory contents.
/// `setup` initializes a fresh Memory per execution.
inline void run_differential(
    const Module& module, std::string_view fn_name,
    const std::vector<Value>& args,
    const std::function<void(Memory&)>& setup,
    AllocPolicy policy = AllocPolicy::LinearScan) {
  expect_verifies(module);
  const auto fn_idx = module.find_function(fn_name);
  ASSERT_TRUE(fn_idx.has_value());

  Memory ref_mem(1 << 20);
  setup(ref_mem);
  Interpreter interp(module, ref_mem);
  const ExecResult ref = interp.run(*fn_idx, args);
  ASSERT_TRUE(ref.ok()) << ref.trap_message();

  for (TargetKind kind : all_targets()) {
    const MachineDesc& desc = target_desc(kind);
    JitCompiler jit(desc, {policy, true});
    const std::vector<MFunction> code = jit.compile_module(module);

    Memory mem(1 << 20);
    setup(mem);
    Simulator sim(desc, code, mem);
    const SimResult got = sim.run(*fn_idx, args);
    ASSERT_TRUE(got.ok()) << desc.name << ": trap";
    if (ref.value.has_value() && ref.value->type != Type::Void) {
      EXPECT_EQ(*ref.value, got.value)
          << desc.name << " (" << alloc_policy_name(policy) << "): returned "
          << got.value.str() << " expected " << ref.value->str();
    }
    EXPECT_TRUE(std::equal(ref_mem.bytes().begin(), ref_mem.bytes().end(),
                           mem.bytes().begin()))
        << desc.name << ": memory state diverged";
  }
}

}  // namespace svc::testing
