// Frontend + offline-compiler tests: parsing, semantic errors, IR shape,
// passes, and end-to-end correctness of compiled MiniC against hand
// computation in the interpreter.
#include <gtest/gtest.h>

#include "bytecode/disassembler.h"
#include "driver/kernels.h"
#include "driver/offline_compiler.h"
#include "frontend/irgen.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "ir/passes.h"
#include "test_util.h"

namespace svc {
namespace {

using ::svc::testing::value_or_die;

std::optional<Program> parse_ok(std::string_view src) {
  DiagnosticEngine diags;
  auto p = parse_program(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.dump();
  return p;
}

TEST(Lexer, TokenKinds) {
  DiagnosticEngine diags;
  const auto toks = lex("fn x1 123 1.5 2.0f <= -> // comment\n==", diags);
  ASSERT_FALSE(diags.has_errors());
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, Tok::KwFn);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "x1");
  EXPECT_EQ(toks[2].kind, Tok::IntLit);
  EXPECT_EQ(toks[2].int_value, 123);
  EXPECT_EQ(toks[3].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 1.5);
  EXPECT_EQ(toks[4].kind, Tok::FloatLit);
  EXPECT_TRUE(toks[4].float_is_f32);
  EXPECT_EQ(toks[5].kind, Tok::Le);
  EXPECT_EQ(toks[6].kind, Tok::Arrow);
  EXPECT_EQ(toks[7].kind, Tok::Eq);
}

TEST(Lexer, ReportsBadCharacter) {
  DiagnosticEngine diags;
  (void)lex("fn @", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, FullKernelSuiteParses) {
  for (const KernelInfo& k : table1_kernels()) {
    DiagnosticEngine diags;
    auto p = parse_program(k.source, diags);
    EXPECT_TRUE(p.has_value()) << k.name << ": " << diags.dump();
  }
  EXPECT_TRUE(parse_ok(branchy_max_kernel().source).has_value());
  EXPECT_TRUE(parse_ok(control_kernel().source).has_value());
  EXPECT_TRUE(parse_ok(fir_source()).has_value());
}

TEST(Parser, RejectsSyntaxErrors) {
  const char* bad_cases[] = {
      "fn f( { }",
      "fn f() { var x i32; }",
      "fn f() { x = ; }",
      "fn f() { if x { } }",
      "fn f() -> *f32 { }",
      "fn f() { 1 + ; }",
  };
  for (const char* src : bad_cases) {
    DiagnosticEngine diags;
    EXPECT_FALSE(parse_program(src, diags).has_value()) << src;
  }
}

TEST(Sema, RejectsSemanticErrors) {
  const char* bad_cases[] = {
      "fn f() { y = 1; }",                             // unknown var
      "fn f() { var x: i32 = 1; var x: i32 = 2; }",    // redefinition
      "fn f(p: *f32) { p[0] = p; }",                   // pointer stored raw
      "fn f() -> i32 { return 1.5f; }",                // return mismatch
      "fn f(a: f32, b: i32) -> f32 { return a + b; }", // mixed arith
      "fn f() { g(); }",                               // unknown function
      "fn f(p: *u8) { p[1.5f] = 0; }",                 // non-i32 index
      "fn f(a: i32) { var b: f32 = a; }",              // init mismatch
  };
  for (const char* src : bad_cases) {
    DiagnosticEngine diags;
    auto p = parse_program(src, diags);
    if (!p) continue;  // also fine: caught in the parser
    EXPECT_FALSE(generate_ir(*p, diags).has_value()) << src;
    EXPECT_TRUE(diags.has_errors()) << src;
  }
}

TEST(IrGen, ProducesExpectedLoopShape) {
  auto p = parse_ok(table1_kernels()[1].source);  // saxpy
  ASSERT_TRUE(p);
  DiagnosticEngine diags;
  auto fns = generate_ir(*p, diags);
  ASSERT_TRUE(fns.has_value()) << diags.dump();
  ASSERT_EQ(fns->size(), 1u);
  IRFunction& fn = (*fns)[0];
  // entry + header + body + exit.
  EXPECT_EQ(fn.num_blocks(), 4u);
  EXPECT_EQ(fn.num_params(), 4u);
  const std::string text = fn.str();
  EXPECT_NE(text.find("mul.f32"), std::string::npos);
  EXPECT_NE(text.find("lt_s.i32"), std::string::npos);
}

TEST(Passes, CoalesceCanonicalizesInduction) {
  auto p = parse_ok("fn f(n: i32) -> i32 { var i: i32 = 0;"
                    " while (i < n) { i = i + 1; } return i; }");
  ASSERT_TRUE(p);
  DiagnosticEngine diags;
  auto fns = generate_ir(*p, diags);
  ASSERT_TRUE(fns.has_value());
  run_passes((*fns)[0], {});
  // After coalescing the loop body updates i in place: one add whose dst
  // and source coincide.
  bool found_inplace_add = false;
  for (const auto& block : (*fns)[0].blocks()) {
    for (const IRInst& inst : block.insts) {
      if (inst.op == Opcode::AddI32 &&
          (inst.dst == inst.s0 || inst.dst == inst.s1)) {
        found_inplace_add = true;
      }
    }
  }
  EXPECT_TRUE(found_inplace_add);
}

TEST(Passes, StrengthReductionAndFolding) {
  auto p = parse_ok("fn f(x: i32) -> i32 { return x * 8 + (2 + 3); }");
  ASSERT_TRUE(p);
  DiagnosticEngine diags;
  auto fns = generate_ir(*p, diags);
  ASSERT_TRUE(fns.has_value());
  const PassStats stats = run_passes((*fns)[0], {});
  EXPECT_GE(stats.simplified, 1u);  // x*8 -> x<<3
  EXPECT_GE(stats.folded, 1u);      // 2+3 -> 5
  const std::string text = (*fns)[0].str();
  EXPECT_NE(text.find("shl.i32"), std::string::npos);
  EXPECT_EQ(text.find("mul.i32"), std::string::npos);
}

TEST(Offline, CompilesAndVerifiesAllKernels) {
  for (const KernelInfo& k : table1_kernels()) {
    Statistics stats;
    auto module = compile_module(k.source, {}, &stats);
    ASSERT_TRUE(module.ok()) << k.name << ": " << module.error_text();
    EXPECT_EQ(stats.get("offline.loops_vectorized"), 1) << k.name;
  }
}

TEST(Offline, VectorizedBytecodeUsesPortableBuiltins) {
  const Module m = value_or_die(compile_module(table1_kernels()[0].source));  // vecadd
  const std::string text = disassemble(m);
  EXPECT_NE(text.find("load.v128"), std::string::npos);
  EXPECT_NE(text.find("v.add.f32"), std::string::npos);
  EXPECT_NE(text.find("store.v128"), std::string::npos);
}

TEST(Offline, SumU8UsesWideningReduction) {
  const Module m = value_or_die(compile_module(table1_kernels()[4].source));  // sum u8
  const std::string text = disassemble(m);
  EXPECT_NE(text.find("v.rsum.u8"), std::string::npos);
}

TEST(Offline, MaxU8UsesVectorAccumulator) {
  const Module m = value_or_die(compile_module(table1_kernels()[3].source));  // max u8
  const std::string text = disassemble(m);
  EXPECT_NE(text.find("v.max.u8"), std::string::npos);
  EXPECT_NE(text.find("v.rmax.u8"), std::string::npos);
}

TEST(Offline, AnnotationsAttached) {
  const Module m = value_or_die(compile_module(table1_kernels()[1].source));
  const auto& anns = m.function(0).annotations();
  EXPECT_NE(find_annotation(anns, AnnotationKind::VectorizedLoop), nullptr);
  EXPECT_NE(find_annotation(anns, AnnotationKind::SpillPriority), nullptr);
  const Annotation* hw = find_annotation(anns, AnnotationKind::HardwareHints);
  ASSERT_NE(hw, nullptr);
  const auto hints = HardwareHintsInfo::decode(hw->payload);
  ASSERT_TRUE(hints.has_value());
  EXPECT_TRUE(hints->features & kFeatureSimd);
  EXPECT_TRUE(hints->features & kFeatureFloat);
}

TEST(Offline, VectorizeOffProducesScalarBytecode) {
  OfflineOptions opts;
  opts.vectorize = false;
  const Module m = value_or_die(compile_module(table1_kernels()[0].source, opts));
  const std::string text = disassemble(m);
  EXPECT_EQ(text.find("v128"), std::string::npos);
}

TEST(Offline, IfConversionRemovesBranchyDiamond) {
  OfflineOptions opts;
  opts.passes.if_convert = true;
  opts.vectorize = false;
  Statistics stats;
  auto m = compile_module(branchy_max_kernel().source, opts, &stats);
  ASSERT_TRUE(m.ok()) << m.error_text();
  EXPECT_GE(stats.get("offline.if_converted"), 1);
  EXPECT_NE(disassemble(*m).find("select"), std::string::npos);
}

// End-to-end: compiled MiniC matches hand computation in the interpreter.
TEST(Offline, SaxpyComputesCorrectly) {
  const Module m = value_or_die(compile_module(table1_kernels()[1].source));
  Memory mem(1 << 16);
  const uint32_t x = 256, y = 4096, n = 37;  // 37 = vector part + epilogue
  for (uint32_t k = 0; k < n; ++k) {
    mem.write_f32(x + 4 * k, 0.25f * static_cast<float>(k));
    mem.write_f32(y + 4 * k, 1.0f + static_cast<float>(k));
  }
  Interpreter interp(m, mem);
  auto r = interp.run("saxpy", {Value::make_f32(2.0f), Value::make_i32(x),
                                Value::make_i32(y), Value::make_i32(n)});
  ASSERT_TRUE(r.ok()) << r.trap_message();
  for (uint32_t k = 0; k < n; ++k) {
    const float expect = 2.0f * (0.25f * static_cast<float>(k)) +
                         (1.0f + static_cast<float>(k));
    EXPECT_FLOAT_EQ(mem.read_f32(y + 4 * k), expect) << k;
  }
}

TEST(Offline, SumU8MatchesScalarSemantics) {
  const Module vec = value_or_die(compile_module(table1_kernels()[4].source));
  OfflineOptions scalar_opts;
  scalar_opts.vectorize = false;
  const Module scalar = value_or_die(compile_module(table1_kernels()[4].source,
                                       scalar_opts));
  Memory mem1(1 << 16), mem2(1 << 16);
  Rng rng(7);
  const uint32_t p = 512, n = 1000;
  for (uint32_t k = 0; k < n; ++k) {
    const auto v = static_cast<uint8_t>(rng.next_u32());
    mem1.store_u8(p + k, v);
    mem2.store_u8(p + k, v);
  }
  Interpreter i1(vec, mem1), i2(scalar, mem2);
  const auto a =
      i1.run("sum_u8", {Value::make_i32(p), Value::make_i32(n)});
  const auto b =
      i2.run("sum_u8", {Value::make_i32(p), Value::make_i32(n)});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value->i32, b.value->i32);
}

// The decisive test: every kernel, vectorized, runs identically on the
// interpreter and on every JIT target, across edge-case sizes.
using KernelParam = std::tuple<size_t, int>;

class KernelDiffTest : public ::testing::TestWithParam<KernelParam> {};

TEST_P(KernelDiffTest, VectorizedKernelMatchesOnAllTargets) {
  const auto [kernel_idx, n] = GetParam();
  const KernelInfo& k = table1_kernels()[kernel_idx];
  Module m = value_or_die(compile_module(k.source));

  const uint32_t A = 1024, B = 16384, C = 32768;
  auto setup = [&, n = n](Memory& mem) {
    Rng rng(kernel_idx * 1000 + static_cast<uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      mem.write_f32(A + 4 * static_cast<uint32_t>(i), rng.next_f32());
      mem.write_f32(B + 4 * static_cast<uint32_t>(i), rng.next_f32());
      mem.store_u8(C + static_cast<uint32_t>(i),
                   static_cast<uint8_t>(rng.next_u32()));
      mem.store_u16(C + 2 * static_cast<uint32_t>(i),
                    static_cast<uint16_t>(rng.next_u32()));
    }
  };
  std::vector<Value> args;
  switch (k.shape) {
    case KernelShape::MapF32:
      if (k.fn_name == std::string_view("saxpy")) {
        args = {Value::make_f32(1.5f), Value::make_i32(A), Value::make_i32(B),
                Value::make_i32(n)};
      } else {
        args = {Value::make_i32(C), Value::make_i32(A), Value::make_i32(B),
                Value::make_i32(n)};
      }
      break;
    case KernelShape::ScaleF32:
      args = {Value::make_f32(0.75f), Value::make_i32(A), Value::make_i32(n)};
      break;
    case KernelShape::ReduceU8:
    case KernelShape::ReduceU16:
      args = {Value::make_i32(C), Value::make_i32(n)};
      break;
  }
  svc::testing::run_differential(m, k.fn_name, args, setup);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAndSizes, KernelDiffTest,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 2, 3, 4, 5),
                       // 0 and sizes around the VF boundaries.
                       ::testing::Values(0, 1, 3, 4, 15, 16, 17, 64, 100)),
    [](const ::testing::TestParamInfo<KernelParam>& info) {
      // No commas at macro level: structured bindings would split the
      // INSTANTIATE macro's arguments.
      std::string name(table1_kernels()[std::get<0>(info.param)].fn_name);
      return name + "_n" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace svc
