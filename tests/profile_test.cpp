// The profile feedback loop (ISSUE 3): ProfileInfo annotation round-trip
// and version skew, interpreter collection, tier-2 re-specialization, and
// the run -> export -> re-import -> seeded-tuner cycle. Acceptance
// properties:
//  - bit-identity across tier 0 / tier 1 / tier 2 on all simulator
//    targets;
//  - run with profiling -> export a profile-annotated module -> re-import
//    offline -> the iterative tuner's first evaluated config matches the
//    profile-derived seed;
//  - an old reader rejects a newer Profile payload cleanly, and unknown
//    annotation kinds are skipped, not fatal.
#include <gtest/gtest.h>

#include "bytecode/disassembler.h"
#include "bytecode/serializer.h"
#include "driver/kernels.h"
#include "driver/offline_compiler.h"
#include "jit/jit_pipeline.h"
#include "runtime/iterative.h"
#include "runtime/profile_guided.h"
#include "runtime/soc.h"
#include "support/crc32.h"
#include "support/rng.h"
#include "support/varint.h"
#include "test_util.h"
#include "vm/profile.h"

namespace svc {
namespace {

using namespace ::svc::testing;

ProfileInfo rich_profile() {
  ProfileInfo info;
  info.calls = 42;
  info.scalar_ops = 100000;
  info.lane16_ops = 7;
  info.lane8_ops = 0;
  info.lane4_ops = 512;
  info.branches[1] = {900, 100};
  info.branches[4] = {33, 35};
  info.loops[1][trip_bucket(100)] = 10;
  info.loops[2][0] = 3;
  return info;
}

TEST(ProfileInfo, EncodeDecodeRoundtrip) {
  const ProfileInfo info = rich_profile();
  const Annotation ann = info.encode();
  EXPECT_EQ(ann.kind, AnnotationKind::Profile);

  const auto decoded = ProfileInfo::decode(ann.payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, info);

  // The empty profile round-trips too.
  const auto empty = ProfileInfo::decode(ProfileInfo{}.encode().payload);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(ProfileInfo, HashIsContentDerived) {
  const ProfileInfo a = rich_profile();
  ProfileInfo b = rich_profile();
  EXPECT_EQ(a.hash(), b.hash());
  b.calls += 1;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(ProfileInfo, RejectsCorruptPayload) {
  Annotation ann = rich_profile().encode();
  ann.payload[2] ^= 0x40;  // body flip: CRC must catch it
  EXPECT_FALSE(ProfileInfo::decode(ann.payload).has_value());
  EXPECT_FALSE(ProfileInfo::decode({}).has_value());

  Annotation truncated = rich_profile().encode();
  truncated.payload.pop_back();
  EXPECT_FALSE(ProfileInfo::decode(truncated.payload).has_value());
}

TEST(ProfileInfo, RejectsVersionSkewCleanly) {
  // A well-formed payload from a hypothetical newer format: valid CRC,
  // higher version. An old reader must reject it (nullopt), not crash or
  // misparse.
  std::vector<uint8_t> payload;
  write_uleb(payload, kProfileVersion + 1);
  for (int i = 0; i < 5; ++i) write_uleb(payload, 0);  // counters
  write_uleb(payload, 0);                              // branches
  write_uleb(payload, 0);                              // loops
  write_uleb(payload, 12345);  // extra field a newer writer might add
  const uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  EXPECT_FALSE(ProfileInfo::decode(payload).has_value());
}

TEST(ProfileInfo, MergeAccumulates) {
  ProfileInfo a = rich_profile();
  a.merge(rich_profile());
  EXPECT_EQ(a.calls, 84u);
  EXPECT_EQ(a.branches[1].taken, 1800u);
  EXPECT_EQ(a.loops[1][trip_bucket(100)], 20u);
  EXPECT_EQ(a.widest_lanes(), 16u);
}

TEST(TripBuckets, PowersOfTwo) {
  EXPECT_EQ(trip_bucket(1), 0u);
  EXPECT_EQ(trip_bucket(2), 1u);
  EXPECT_EQ(trip_bucket(3), 1u);
  EXPECT_EQ(trip_bucket(8), 3u);
  EXPECT_EQ(trip_bucket(9), 3u);
  // The last bucket is open-ended.
  EXPECT_EQ(trip_bucket(uint64_t{1} << 40), kProfileTripBuckets - 1);
  EXPECT_EQ(trip_bucket_floor(3), 8u);
}

// --- Interpreter collection ----------------------------------------------

TEST(ProfileCollector, RecordsCallsBranchesLoopsAndWidths) {
  Module m;
  m.add_function(build_scalar_saxpy());    // 0: scalar loop
  m.add_function(build_vector_dot_f32());  // 1: f32x4 loop
  expect_verifies(m);

  Memory mem(1 << 20);
  for (uint32_t i = 0; i < 64; ++i) {
    mem.write_f32(1024 + 4 * i, 1.0f);
    mem.write_f32(4096 + 4 * i, 2.0f);
  }
  Interpreter interp(m, mem);
  ProfileData profile(m.num_functions());
  interp.set_profile(&profile);

  constexpr int kTrips = 8;
  const ExecResult saxpy = interp.run(
      "saxpy", {Value::make_f32(2.0f), Value::make_i32(1024),
                Value::make_i32(4096), Value::make_i32(kTrips)});
  ASSERT_TRUE(saxpy.ok());

  const ProfileInfo& sp = profile.function(0);
  EXPECT_EQ(sp.calls, 1u);
  EXPECT_GT(sp.scalar_ops, 0u);
  EXPECT_EQ(sp.vector_ops(), 0u);
  // Loop-head branch (block 1): taken once per iteration, not-taken once
  // on exit.
  ASSERT_TRUE(sp.branches.contains(1));
  EXPECT_EQ(sp.branches.at(1).taken, static_cast<uint64_t>(kTrips));
  EXPECT_EQ(sp.branches.at(1).not_taken, 1u);
  EXPECT_FALSE(sp.branches.at(1).is_mixed());
  // One completed loop run of kTrips+1 header visits -> bucket [8,16).
  ASSERT_TRUE(sp.loops.contains(1));
  EXPECT_EQ(sp.loops.at(1)[trip_bucket(kTrips + 1)], 1u);

  const ExecResult dot = interp.run(
      "vdot_f32",
      {Value::make_i32(1024), Value::make_i32(4096), Value::make_i32(4)});
  ASSERT_TRUE(dot.ok());
  EXPECT_GT(profile.function(1).lane4_ops, 0u);
  EXPECT_EQ(profile.function(1).widest_lanes(), 4u);

  // No collector attached: execution identical, nothing recorded.
  Interpreter bare(m, mem);
  const ExecResult again = bare.run(
      "vdot_f32",
      {Value::make_i32(1024), Value::make_i32(4096), Value::make_i32(4)});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value->f32, dot.value->f32);
}

TEST(ProfileCollector, AttributesCalleesAndMerges) {
  const Module m = build_call_module();
  expect_verifies(m);
  Memory mem(1 << 16);
  Interpreter interp(m, mem);
  ProfileData profile(m.num_functions());
  interp.set_profile(&profile);
  ASSERT_TRUE(interp.run("combine", {Value::make_i32(5)}).ok());

  const auto add2 = m.find_function("add2");
  const auto combine = m.find_function("combine");
  ASSERT_TRUE(add2 && combine);
  EXPECT_EQ(profile.function(*combine).calls, 1u);
  EXPECT_EQ(profile.function(*add2).calls, 3u);  // three nested calls

  ProfileData other(m.num_functions());
  other.record_call(*add2);
  profile.merge(other);
  EXPECT_EQ(profile.function(*add2).calls, 4u);
  EXPECT_FALSE(profile.empty());
}

// --- Module attach / extract / serializer --------------------------------

TEST(ProfileModule, AttachSerializeExtractRoundtrip) {
  Module m;
  m.add_function(build_scalar_saxpy());
  m.add_function(build_high_pressure());
  expect_verifies(m);
  EXPECT_FALSE(has_profile(m));

  ProfileData profile(2);
  profile.function(0) = rich_profile();
  // Function 1 stays empty: no annotation should be attached for it.

  const Module annotated = attach_profile(m, profile);
  EXPECT_TRUE(has_profile(annotated));
  EXPECT_NE(find_annotation(annotated.function(0).annotations(),
                            AnnotationKind::Profile),
            nullptr);
  EXPECT_EQ(find_annotation(annotated.function(1).annotations(),
                            AnnotationKind::Profile),
            nullptr);

  // Attaching again replaces, never duplicates.
  const Module twice = attach_profile(annotated, profile);
  size_t records = 0;
  for (const Annotation& a : twice.function(0).annotations()) {
    records += a.kind == AnnotationKind::Profile ? 1 : 0;
  }
  EXPECT_EQ(records, 1u);

  const std::vector<uint8_t> image = serialize_module(annotated);
  const DeserializeResult loaded = deserialize_module(image);
  ASSERT_TRUE(loaded.module.has_value()) << loaded.error;
  const ProfileData back = extract_profile(*loaded.module);
  EXPECT_EQ(back.function(0), rich_profile());
  EXPECT_TRUE(back.function(1).empty());
}

TEST(ProfileModule, UnknownAndSkewedAnnotationsAreSkipped) {
  Module m;
  m.add_function(build_scalar_saxpy());

  // An annotation kind this reader has never heard of survives the
  // serializer byte-exactly and is simply not consumed.
  Annotation unknown{static_cast<AnnotationKind>(777), {1, 2, 3}};
  m.function(0).annotations().push_back(unknown);
  // A Profile record from a newer format version: the module still loads;
  // extract_profile just skips the record.
  Annotation skewed = rich_profile().encode();
  skewed.payload[0] = static_cast<uint8_t>(kProfileVersion + 1);
  m.function(0).annotations().push_back(skewed);

  const DeserializeResult loaded =
      deserialize_module(serialize_module(m));
  ASSERT_TRUE(loaded.module.has_value()) << loaded.error;
  EXPECT_EQ(loaded.module->function(0).annotations().size(), 2u);
  EXPECT_EQ(loaded.module->function(0).annotations()[0], unknown);
  EXPECT_TRUE(extract_profile(*loaded.module).empty());
  EXPECT_FALSE(has_profile(*loaded.module));

  // The disassembler reports rather than chokes.
  EXPECT_NE(disassemble(unknown).find("unknown"), std::string::npos);
  EXPECT_NE(disassemble(skewed).find("skipped"), std::string::npos);
  EXPECT_NE(disassemble(rich_profile().encode()).find("profile v1"),
            std::string::npos);
}

// --- Tier 2 ---------------------------------------------------------------

TEST(Tier2, DerivedOptionsRespectTargetAndPressure) {
  Module m;
  m.add_function(build_high_pressure());   // 17 int locals
  m.add_function(build_vector_dot_f32());  // vector + f32

  const JitOptions base;
  const ProfileInfo empty;

  // 17 int locals > 14 int regs on x86sim: the hot recompile upgrades to
  // the offline-quality allocator.
  const JitOptions hot = derive_tier2_options(
      base, target_desc(TargetKind::X86Sim), m.function(0), empty);
  EXPECT_EQ(hot.alloc_policy, AllocPolicy::OfflineChaitin);
  ASSERT_TRUE(hot.pipeline.has_value());
  EXPECT_EQ(hot.pipeline->names().front(), "stack_to_reg");
  EXPECT_NE(hot.cache_key(), base.cache_key());
  // The tier-2 chain always differs from the tier-1 default, so the two
  // tiers never alias in the cache even for unpressured functions.
  EXPECT_NE(hot.pipeline->str(),
            default_jit_pipeline(target_desc(TargetKind::X86Sim)).str());

  // vdot on ppcsim (24 f regs, no SIMD, FMA): scalarization + fma stay,
  // allocator stays the fast one.
  const JitOptions vec = derive_tier2_options(
      base, target_desc(TargetKind::PpcSim), m.function(1), empty);
  ASSERT_TRUE(vec.pipeline.has_value());
  EXPECT_TRUE(vec.pipeline->contains("devectorize"));
  EXPECT_TRUE(vec.pipeline->contains("fma"));
  EXPECT_EQ(vec.alloc_policy, base.alloc_policy);

  // On the SIMD-capable x86sim no scalarization is derived (and no FMA:
  // the target has none).
  const JitOptions simd = derive_tier2_options(
      base, target_desc(TargetKind::X86Sim), m.function(1), empty);
  EXPECT_FALSE(simd.pipeline->contains("devectorize"));
  EXPECT_FALSE(simd.pipeline->contains("fma"));

  // Observed width feeds the demand estimate: vmax_u8 holds one v128
  // accumulator local; on a scalar target it scalarizes to the widest
  // observed lane count (16 x u8 -> 16 integer registers, on top of the
  // three scalar i32 locals).
  const uint32_t vmax = m.add_function(build_vector_max_u8());
  ProfileInfo wide;
  wide.lane16_ops = 10;
  const auto demand = estimate_register_demand(
      m.function(vmax), target_desc(TargetKind::PpcSim), wide);
  EXPECT_EQ(demand[static_cast<size_t>(RegClass::Int)], 19u);
  EXPECT_EQ(demand[static_cast<size_t>(RegClass::Flt)], 0u);
  // Unobserved vector width defaults to 4 lanes (and the f32 class).
  const auto blind = estimate_register_demand(
      m.function(vmax), target_desc(TargetKind::PpcSim), ProfileInfo{});
  EXPECT_EQ(blind[static_cast<size_t>(RegClass::Int)], 3u);
  EXPECT_EQ(blind[static_cast<size_t>(RegClass::Flt)], 4u);
}

/// Runs `name` on `target` and compares value and memory against the
/// reference interpreter.
void expect_matches_interpreter(OnlineTarget& target, const Module& m,
                                std::string_view name,
                                const std::vector<Value>& args,
                                const std::function<void(Memory&)>& setup,
                                uint8_t expected_tier) {
  Memory ref_mem(1 << 20);
  setup(ref_mem);
  Interpreter interp(m, ref_mem);
  const ExecResult ref = interp.run(name, args);
  ASSERT_TRUE(ref.ok()) << ref.trap_message();

  Memory mem(1 << 20);
  setup(mem);
  const SimResult got = target.run(name, args, mem);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.tier, expected_tier) << target.desc().name;
  if (ref.value.has_value() && ref.value->type != Type::Void) {
    EXPECT_EQ(*ref.value, got.value) << target.desc().name;
  }
  EXPECT_TRUE(std::equal(ref_mem.bytes().begin(), ref_mem.bytes().end(),
                         mem.bytes().begin()))
      << target.desc().name << ": memory diverged at tier "
      << int(expected_tier);
}

TEST(Tier2, BitIdenticalAcrossAllTiersOnEveryTarget) {
  Module m;
  m.add_function(build_scalar_saxpy());
  m.add_function(build_vector_dot_f32());
  expect_verifies(m);
  const auto setup = [](Memory& mem) {
    for (uint32_t i = 0; i < 64; ++i) {
      mem.write_f32(1024 + 4 * i, 0.5f + static_cast<float>(i));
      mem.write_f32(4096 + 4 * i, 1.5f * static_cast<float>(i));
    }
  };
  const std::vector<Value> saxpy_args = {
      Value::make_f32(2.0f), Value::make_i32(1024), Value::make_i32(4096),
      Value::make_i32(64)};
  const std::vector<Value> dot_args = {Value::make_i32(1024),
                                       Value::make_i32(4096),
                                       Value::make_i32(16)};

  for (const TargetKind kind : all_targets()) {
    OnlineTarget::Config config;
    config.mode = LoadMode::Tiered;
    config.promote_threshold = 2;  // call 1 interprets (and profiles)
    config.profile = true;
    config.tier2_threshold = 2;  // second JITed call re-specializes
    OnlineTarget target(kind, {}, config);
    load_or_die(target, m);

    for (const char* fn : {"saxpy", "vdot_f32"}) {
      const auto& args =
          std::string_view(fn) == "saxpy" ? saxpy_args : dot_args;
      // Tier 0 -> tier 1 -> tier 2, every call checked against the
      // reference interpreter.
      expect_matches_interpreter(target, m, fn, args, setup, 0);
      expect_matches_interpreter(target, m, fn, args, setup, 1);
      expect_matches_interpreter(target, m, fn, args, setup, 2);
      expect_matches_interpreter(target, m, fn, args, setup, 2);
    }
    EXPECT_EQ(target.tier2_functions(), 2u) << target_desc(kind).name;
    EXPECT_EQ(target.interpreted_calls(), 2u);
    EXPECT_EQ(target.jitted_calls(), 6u);
    EXPECT_EQ(target.tier2_calls(), 4u);
    // The tier-0 runs actually profiled: the re-specialization had data.
    EXPECT_FALSE(target.profile().empty());
  }
}

TEST(Tier2, ArtifactsCoexistInCacheAndAreShared) {
  Module m;
  m.add_function(build_scalar_saxpy());
  expect_verifies(m);
  CodeCache cache;
  OnlineTarget::Config config;
  config.mode = LoadMode::Tiered;
  config.promote_threshold = 1;  // straight to tier 1 (profile stays empty)
  config.tier2_threshold = 2;
  config.cache = &cache;

  const auto setup = [](Memory& mem) {
    for (uint32_t i = 0; i < 8; ++i) mem.write_f32(1024 + 4 * i, 1.0f);
  };
  const std::vector<Value> args = {Value::make_f32(2.0f),
                                   Value::make_i32(1024),
                                   Value::make_i32(4096), Value::make_i32(8)};

  OnlineTarget first(TargetKind::X86Sim, {}, config);
  load_or_die(first, m);
  Memory mem(1 << 20);
  setup(mem);
  ASSERT_TRUE(first.run("saxpy", args, mem).ok());  // tier-1 compile
  ASSERT_TRUE(first.run("saxpy", args, mem).ok());  // tier-2 compile
  EXPECT_EQ(first.tier2_functions(), 1u);
  // Two distinct entries: the keys differ in tier, so the artifacts
  // coexist (and would evict independently).
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_EQ(cache.stats().get("cache.compiles"), 2);

  // A same-kind, same-config core reuses *both* tiers from the cache:
  // identical empty profile -> identical profile hash -> identical keys.
  OnlineTarget second(TargetKind::X86Sim, {}, config);
  load_or_die(second, m);
  ASSERT_TRUE(second.run("saxpy", args, mem).ok());
  ASSERT_TRUE(second.run("saxpy", args, mem).ok());
  EXPECT_EQ(second.tier2_functions(), 1u);
  EXPECT_EQ(cache.stats().get("cache.compiles"), 2);
  EXPECT_EQ(cache.stats().get("cache.hits"), 2);
}

// --- The full loop: run -> export -> re-import -> seeded tuner ------------

TEST(ProfileLoop, ExportReimportSeedsIterativeTuner) {
  const KernelInfo& kernel = branchy_max_kernel();
  constexpr int kN = 512;

  const auto workload = [&](OnlineTarget& target) -> uint64_t {
    Memory mem(1 << 20);
    Rng rng(7);
    for (int i = 0; i < kN; ++i) {
      mem.store_u8(1024 + static_cast<uint32_t>(i),
                   static_cast<uint8_t>(rng.next_u32()));
    }
    const SimResult r = target.run(
        kernel.fn_name, {Value::make_i32(1024), Value::make_i32(kN)}, mem);
    return r.ok() ? r.stats.cycles : UINT64_MAX;
  };

  // 1. Deploy tiered with profiling; stay at tier 0 so the interpreter
  //    observes the workload.
  const Module deployed = value_or_die(compile_module(kernel.source));
  OnlineTarget::Config config;
  config.mode = LoadMode::Tiered;
  config.promote_threshold = 1u << 30;
  config.profile = true;
  OnlineTarget device(TargetKind::X86Sim, {}, config);
  load_or_die(device, deployed);
  Memory mem(1 << 20);
  Rng rng(7);
  for (int i = 0; i < kN; ++i) {
    mem.store_u8(1024 + static_cast<uint32_t>(i),
                 static_cast<uint8_t>(rng.next_u32()));
  }
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_TRUE(device
                    .run(kernel.fn_name,
                         {Value::make_i32(1024), Value::make_i32(kN)}, mem)
                    .ok());
  }

  // 2. Export and round-trip through the deployment image format.
  const Module exported = device.export_profiled_module();
  EXPECT_TRUE(has_profile(exported));
  const DeserializeResult imported =
      deserialize_module(serialize_module(exported));
  ASSERT_TRUE(imported.module.has_value()) << imported.error;

  // 3. The tuner's first evaluated config is the profile-derived seed.
  const TuneConfig seed = profile_seed_config(*imported.module);
  EXPECT_EQ(seed.name.rfind("pgo:", 0), 0u);
  const TuneResult result = tune_with_profile(
      kernel.source, TargetKind::X86Sim, workload, *imported.module);
  ASSERT_FALSE(result.all.empty());
  EXPECT_EQ(result.all.front().config.pipeline, seed.pipeline);
  EXPECT_EQ(result.all.front().config.str(), seed.str());
  // Seeding never loses the winner's quality class: the best candidate
  // was evaluated on the real simulator either way.
  EXPECT_LE(result.best.cycles, result.all.front().cycles);

  // 4. compile_module re-ingests: the next offline cycle carries the
  //    profile forward on the recompiled functions.
  OfflineOptions next_cycle;
  next_cycle.profile = &*imported.module;
  const auto recompiled = compile_module(kernel.source, next_cycle);
  ASSERT_TRUE(recompiled.ok()) << recompiled.error_text();
  EXPECT_TRUE(has_profile(*recompiled));
}

TEST(ProfileLoop, SpaceIsPrunedByObservedBehavior) {
  // A synthetic profile: scalar work only, short loops, fully biased
  // branches -> the seed disables vectorize and if-convert, and the
  // guided space drops the arms that use them.
  Module m;
  m.add_function(build_scalar_saxpy());
  ProfileData profile(1);
  profile.function(0).calls = 50;
  profile.function(0).scalar_ops = 5000;
  profile.function(0).branches[1] = {1000, 2};  // heavily biased
  profile.function(0).loops[1][trip_bucket(2)] = 50;  // short loops
  const Module profiled = attach_profile(m, profile);

  const TuneConfig seed = profile_seed_config(profiled);
  EXPECT_FALSE(seed.uses("vectorize"));
  EXPECT_FALSE(seed.uses("if_convert"));

  const std::vector<TuneConfig> space =
      profile_guided_space(profiled, classic8_preset());
  ASSERT_FALSE(space.empty());
  EXPECT_EQ(space.front().pipeline, seed.pipeline);
  for (const TuneConfig& config : space) {
    EXPECT_FALSE(config.uses("vectorize")) << config.str();
    EXPECT_FALSE(config.uses("if_convert")) << config.str();
  }
  // Classic8 collapses to the two surviving scalar arms plus the seed.
  EXPECT_LT(space.size(), classic8_preset().size());

  // An unprofiled module leaves the space untouched.
  Module bare;
  bare.add_function(build_scalar_saxpy());
  EXPECT_EQ(profile_guided_space(bare, classic8_preset()).size(),
            classic8_preset().size());
}

TEST(ProfileLoop, SocMergesAndExportsAcrossCores) {
  Module m;
  m.add_function(build_high_pressure());
  expect_verifies(m);

  SocOptions options;
  options.mode = LoadMode::Tiered;
  options.promote_threshold = 1u << 30;  // stay at tier 0: collect
  options.profile = true;
  Soc soc({{TargetKind::X86Sim, false}, {TargetKind::PpcSim, false}}, 1 << 16,
          options);
  load_or_die(soc, m);
  for (uint32_t i = 0; i < 16; ++i) soc.memory().write_i32(4 * i, 3);
  ASSERT_TRUE(soc.run_on(0, "pressure16", {Value::make_i32(0)}).ok());
  ASSERT_TRUE(soc.run_on(1, "pressure16", {Value::make_i32(0)}).ok());

  const ProfileData merged = soc.profile();
  EXPECT_EQ(merged.function(0).calls, 2u);  // one per core, merged
  EXPECT_TRUE(has_profile(soc.export_profiled_module()));
}

}  // namespace
}  // namespace svc
