// Runtime-layer unit tests: mapper affinity/ranking math (HardwareHints
// vs. core specs) and the dataflow Pipeline timing model (latency /
// bottleneck formulas), both isolated from the compilers -- annotations
// are hand-encoded and pipeline stages return synthetic SimResults.
#include <gtest/gtest.h>

#include "runtime/dataflow.h"
#include "runtime/mapper.h"
#include "test_util.h"

namespace svc {
namespace {

using namespace ::svc::testing;

Function with_hints(uint32_t features, uint32_t vector_intensity) {
  Function fn = build_scalar_saxpy();
  HardwareHintsInfo hints;
  hints.features = features;
  hints.vector_intensity = vector_intensity;
  fn.annotations().push_back(hints.encode());
  return fn;
}

// x86 host, ppc host, spu accelerator: the spread of SIMD / FMA /
// mispredict-penalty combinations the affinity terms key on.
Soc make_soc() {
  return Soc({{TargetKind::X86Sim, false},
              {TargetKind::PpcSim, false},
              {TargetKind::SpuSim, true}},
             1 << 12);
}

TEST(Mapper, AffinityMatchesFormulaPerTerm) {
  Soc soc = make_soc();

  // No annotation: base score, minus only the accelerator DMA bias.
  Module plain;
  plain.add_function(build_scalar_saxpy());
  EXPECT_DOUBLE_EQ(core_affinity(soc, 0, plain.function(0)), 1.0);
  EXPECT_DOUBLE_EQ(core_affinity(soc, 1, plain.function(0)), 1.0);
  EXPECT_DOUBLE_EQ(core_affinity(soc, 2, plain.function(0)), 0.75);

  // Saturated vector intensity: +2.0 on SIMD cores, -0.3 scalarization
  // drag elsewhere.
  Module vec;
  vec.add_function(with_hints(kFeatureSimd, 10));
  EXPECT_DOUBLE_EQ(core_affinity(soc, 0, vec.function(0)), 3.0);
  EXPECT_DOUBLE_EQ(core_affinity(soc, 1, vec.function(0)), 0.7);
  EXPECT_DOUBLE_EQ(core_affinity(soc, 2, vec.function(0)), 2.75);

  // Half intensity scales both terms linearly.
  Module vec_half;
  vec_half.add_function(with_hints(kFeatureSimd, 5));
  EXPECT_DOUBLE_EQ(core_affinity(soc, 0, vec_half.function(0)), 2.0);
  EXPECT_DOUBLE_EQ(core_affinity(soc, 1, vec_half.function(0)), 0.85);

  // Float work: +0.5 only on FMA cores (ppc, spu).
  Module flt;
  flt.add_function(with_hints(kFeatureFloat, 0));
  EXPECT_DOUBLE_EQ(core_affinity(soc, 0, flt.function(0)), 1.0);
  EXPECT_DOUBLE_EQ(core_affinity(soc, 1, flt.function(0)), 1.5);
  EXPECT_DOUBLE_EQ(core_affinity(soc, 2, flt.function(0)), 1.25);

  // Control-heavy work is charged the core's mispredict penalty.
  Module ctl;
  ctl.add_function(with_hints(kFeatureControlHeavy, 0));
  for (size_t c = 0; c < soc.num_cores(); ++c) {
    const double accel_bias = soc.core_spec(c).is_accelerator ? 0.25 : 0.0;
    EXPECT_DOUBLE_EQ(
        core_affinity(soc, c, ctl.function(0)),
        1.0 - 0.15 * soc.core(c).desc().mispredict_penalty - accel_bias);
  }
}

TEST(Mapper, RankCoversAllCoresSortedDescending) {
  Soc soc = make_soc();
  Module m;
  m.add_function(with_hints(kFeatureSimd | kFeatureFloat, 7));
  const std::vector<MappingScore> ranked = rank_cores(soc, m.function(0));
  ASSERT_EQ(ranked.size(), soc.num_cores());
  std::vector<bool> seen(soc.num_cores(), false);
  for (size_t i = 0; i < ranked.size(); ++i) {
    seen[ranked[i].core] = true;
    EXPECT_DOUBLE_EQ(ranked[i].score,
                     core_affinity(soc, ranked[i].core, m.function(0)));
    if (i > 0) {
      EXPECT_GE(ranked[i - 1].score, ranked[i].score);
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(choose_core(soc, m.function(0)), ranked.front().core);
}

TEST(Mapper, FeatureRoutingAcrossCores) {
  Soc soc = make_soc();
  Module vec;
  vec.add_function(with_hints(kFeatureSimd, 10));
  // SIMD host beats the SIMD accelerator (DMA bias) beats the scalar host.
  const auto ranked = rank_cores(soc, vec.function(0));
  EXPECT_EQ(ranked[0].core, 0u);
  EXPECT_EQ(ranked[1].core, 2u);
  EXPECT_EQ(ranked[2].core, 1u);

  Module ctl;
  ctl.add_function(with_hints(kFeatureControlHeavy, 0));
  // Branchy code lands on the shallow-pipeline host; the deep-pipeline
  // accelerator comes last.
  EXPECT_EQ(choose_core(soc, ctl.function(0)), 1u);
  EXPECT_EQ(rank_cores(soc, ctl.function(0)).back().core, 2u);

  // Ties between identical hosts resolve to the first core (stable sort).
  Soc twins({{TargetKind::PpcSim, false}, {TargetKind::PpcSim, false}},
            1 << 12);
  Module plain;
  plain.add_function(build_scalar_saxpy());
  EXPECT_EQ(choose_core(twins, plain.function(0)), 0u);
}

// --- Dataflow timing -----------------------------------------------------

SimResult firing(uint64_t cycles) {
  SimResult r;
  r.stats.cycles = cycles;
  return r;
}

TEST(Dataflow, LatencyAndBottleneckFormulas) {
  Soc soc = make_soc();
  soc.set_dma_model(100, 4);
  Pipeline pipeline(soc);
  pipeline.add_stage({"a", 0, 0, [] { return firing(100); }});
  pipeline.add_stage({"b", 1, 512, [] { return firing(40); }});  // host: no DMA
  pipeline.add_stage({"c", 2, 64, [] { return firing(250); }});  // accelerator

  const PipelineReport report = pipeline.run(5);
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.stages[0].dma_cycles, 0u);
  // Host stages pay no DMA even with a nonzero per-block byte count.
  EXPECT_EQ(report.stages[1].dma_cycles, 0u);
  // Accelerator: in + out transfers, each setup + bytes/rate.
  EXPECT_EQ(report.stages[2].dma_cycles, 2 * (100 + 64 / 4));
  EXPECT_EQ(report.stages[2].total_cycles(), 250u + 232u);

  EXPECT_EQ(report.latency_cycles, 100u + 40u + 482u);
  EXPECT_EQ(report.bottleneck_cycles(), 482u);
  EXPECT_EQ(report.steady_total_cycles,
            report.latency_cycles + 4 * report.bottleneck_cycles());
}

TEST(Dataflow, SingleBlockAndZeroBlockEdges) {
  Soc soc = make_soc();
  Pipeline pipeline(soc);
  pipeline.add_stage({"only", 0, 0, [] { return firing(77); }});
  const PipelineReport one = pipeline.run(1);
  EXPECT_EQ(one.latency_cycles, 77u);
  EXPECT_EQ(one.steady_total_cycles, one.latency_cycles);

  Pipeline again(soc);
  again.add_stage({"only", 0, 0, [] { return firing(77); }});
  const PipelineReport zero = again.run(0);
  EXPECT_EQ(zero.steady_total_cycles, zero.latency_cycles);
}

TEST(Dataflow, BottleneckDominatesSteadyState) {
  Soc soc = make_soc();
  Pipeline pipeline(soc);
  pipeline.add_stage({"fast", 0, 0, [] { return firing(10); }});
  pipeline.add_stage({"slow", 1, 0, [] { return firing(1000); }});
  const uint64_t blocks = 100;
  const PipelineReport report = pipeline.run(blocks);
  // Pipelined: everything except the first block hides behind the slow
  // stage.
  EXPECT_EQ(report.steady_total_cycles, 1010 + (blocks - 1) * 1000);
  // Not pipelined it would cost blocks * latency; the model must beat it.
  EXPECT_LT(report.steady_total_cycles, blocks * report.latency_cycles);
}

}  // namespace
}  // namespace svc
