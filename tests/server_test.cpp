// The serving layer (serve/server.h) and its support pieces
// (support/mpmc_queue.h, support/latency_histogram.h):
//
//   - an N-thread submit storm produces bit-identical results to
//     sequential Deployment::run on a SoC with every simulated target,
//   - admission control rejects (with a Result error, not unbounded
//     queue growth) when a core's queue is at its watermark,
//   - batched serving promotes a function to tier 1 and re-specializes
//     it at tier 2 from *aggregate* traffic no single client would
//     trigger alone,
//   - the ServerStats identities hold once traffic has quiesced,
//   - destruction resolves every accepted future (none are broken),
//   - the Deployment::warm_up contract: jobs never dangle, and the
//     returned future stays waitable past the Deployment.
//
// This suite (with tests/code_cache_test.cpp and tests/runtime_test.cpp)
// runs under ThreadSanitizer in CI; sizes are kept small.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/svc.h"
#include "support/latency_histogram.h"
#include "support/mpmc_queue.h"
#include "test_util.h"

namespace svc {
namespace {

using svc::testing::value_or_die;

// --- support pieces --------------------------------------------------------

TEST(MpmcQueueTest, PushPopBatchCapacityClose) {
  BoundedMpmcQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_FALSE(q.try_push(1).has_value());
  EXPECT_FALSE(q.try_push(2).has_value());
  EXPECT_FALSE(q.try_push(3).has_value());
  EXPECT_TRUE(q.try_push(4).has_value())
      << "push past capacity must be refused";
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.peak_depth(), 3u);

  std::vector<int> batch;
  EXPECT_EQ(q.try_pop_batch(batch, 2), 2u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));

  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);

  EXPECT_FALSE(q.try_push(5).has_value());
  q.close();
  EXPECT_TRUE(q.try_push(6).has_value())
      << "push after close must be refused";
  EXPECT_TRUE(q.pop(v)) << "items accepted before close stay poppable";
  EXPECT_EQ(v, 5);
  EXPECT_FALSE(q.pop(v)) << "closed and drained";
}

TEST(MpmcQueueTest, MoveOnlyItemsComeBackOnRefusedPush) {
  BoundedMpmcQueue<std::unique_ptr<int>> q(1);
  EXPECT_FALSE(q.try_push(std::make_unique<int>(7)).has_value());
  std::optional<std::unique_ptr<int>> refused =
      q.try_push(std::make_unique<int>(8));
  ASSERT_TRUE(refused.has_value())
      << "a full queue must hand the item back";
  ASSERT_NE(*refused, nullptr);
  EXPECT_EQ(**refused, 8);
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedMpmcQueue<int> q(16);
  std::atomic<int> popped{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> consumers;
  consumers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    consumers.emplace_back([&] {
      int v = 0;
      while (q.pop(v)) {
        sum.fetch_add(v, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&q, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Spin on a full queue: the bound sheds load, the test wants
        // every item through.
        while (q.try_push(t * kPerProducer + i).has_value()) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(LatencyHistogramTest, CountsAndPercentileBuckets) {
  LatencyHistogram hist;
  // 90 fast samples around 100, 10 slow ones around 100000.
  for (int i = 0; i < 90; ++i) hist.record(100);
  for (int i = 0; i < 10; ++i) hist.record(100000);
  const LatencyHistogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 90u * 100 + 10u * 100000);
  EXPECT_EQ(snap.min, 100u);
  EXPECT_EQ(snap.max, 100000u);
  // Bucket resolution: p50 must land in 100's bucket [64, 127], p99 in
  // 100000's bucket [65536, 131071] (both clamped to observed min/max).
  EXPECT_GE(snap.percentile(0.50), 100u);
  EXPECT_LE(snap.percentile(0.50), 127u);
  EXPECT_GE(snap.percentile(0.99), 65536u);
  EXPECT_LE(snap.percentile(0.99), 100000u);
  EXPECT_EQ(snap.percentile(0.0), 100u);
  EXPECT_EQ(LatencyHistogram().snapshot().percentile(0.5), 0u);
}

TEST(LatencyHistogramTest, TopBitValuesClampToLastBucket) {
  // bit_width is 64 for these; they must land in the last bucket, not
  // index past the array.
  LatencyHistogram hist;
  hist.record(UINT64_MAX);
  hist.record(uint64_t{1} << 63);
  const LatencyHistogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.max, UINT64_MAX);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kBuckets - 1], 2u);
  EXPECT_GE(snap.percentile(0.99), uint64_t{1} << 62);
  EXPECT_LE(snap.percentile(0.99), UINT64_MAX);
}

// --- serving fixtures ------------------------------------------------------

constexpr uint32_t kDataBase = 4096;
constexpr int kElems = 256;

/// One module with the three read-only Table 1 reductions: ideal
/// concurrent-serving traffic, because any number of in-flight requests
/// may share the deployment's linear memory.
ModuleHandle build_reduce_suite() {
  Module suite;
  suite.set_name("serve_suite");
  for (const KernelInfo& k : table1_kernels()) {
    if (k.shape != KernelShape::ReduceU8 && k.shape != KernelShape::ReduceU16) {
      continue;
    }
    Module m = value_or_die(compile_module(k.source));
    suite.add_function(m.function(0));
  }
  return ModuleHandle::adopt(std::move(suite));
}

void fill_data(Memory& mem) {
  for (uint32_t i = 0; i < 2 * kElems; ++i) {
    mem.store_u8(kDataBase + i, static_cast<uint8_t>(i * 37 + 11));
  }
}

std::vector<Value> reduce_args() {
  return {Value::make_i32(kDataBase), Value::make_i32(kElems)};
}

std::vector<CoreSpec> all_target_cores() {
  std::vector<CoreSpec> cores;
  for (TargetKind kind : all_targets()) {
    cores.push_back({kind, kind == TargetKind::SpuSim});
  }
  return cores;
}

// --- the server ------------------------------------------------------------

TEST(ServerTest, SubmitStormBitIdenticalToSequentialRunAllTargets) {
  const ModuleHandle suite = build_reduce_suite();
  ASSERT_EQ(suite->num_functions(), 3u);
  const Engine engine = value_or_die(Engine::Builder()
                                         .tiered(/*promote_threshold=*/2)
                                         .profiling()
                                         .tier2(/*threshold=*/4)
                                         .pool_threads(2)
                                         .serving({.workers = 0,
                                                   .queue_depth = 1024,
                                                   .batch_max = 8})
                                         .build());

  // Sequential reference: same engine, same cores, same memory image.
  Deployment reference =
      value_or_die(engine.deploy(suite, all_target_cores()));
  fill_data(reference.memory());
  std::vector<Value> expected;
  for (uint32_t f = 0; f < suite->num_functions(); ++f) {
    const SimResult r = value_or_die(
        reference.run(suite->function(f).name(), reduce_args()));
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value);
  }

  Server server = value_or_die(serve(engine, suite, all_target_cores()));
  fill_data(server.deployment().memory());

  constexpr int kClients = 4;
  constexpr int kPerClientPerFn = 8;
  std::vector<std::future<Result<SimResult>>> futures(
      kClients * kPerClientPerFn * 3);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        for (int i = 0; i < kPerClientPerFn * 3; ++i) {
          const uint32_t f = static_cast<uint32_t>(i % 3);
          const size_t slot =
              static_cast<size_t>(t) * kPerClientPerFn * 3 + i;
          futures[slot] =
              server.submit(suite->function(f).name(), reduce_args());
        }
      });
    }
    for (auto& t : clients) t.join();
  }

  for (size_t slot = 0; slot < futures.size(); ++slot) {
    Result<SimResult> r = futures[slot].get();
    ASSERT_TRUE(r.ok()) << r.error_text();
    ASSERT_TRUE(r->ok());
    const uint32_t f = static_cast<uint32_t>(slot % 3);
    EXPECT_EQ(r->value, expected[f])
        << "storm result diverged from sequential run for '"
        << suite->function(f).name() << "'";
  }

  // Stats identities after quiescing.
  server.drain();
  const ServerStats stats = server.stats();
  const uint64_t total = futures.size();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.accepted, total);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.invalid, 0u);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.latency.count, total);
  EXPECT_GT(stats.batches, 0u);

  uint64_t fn_completed = 0;
  uint64_t tier_sum = 0;
  for (const FunctionServeStats& fs : stats.functions) {
    fn_completed += fs.completed;
    tier_sum += fs.tier0 + fs.tier1 + fs.tier2;
    EXPECT_EQ(fs.completed, fs.latency.count);
    EXPECT_EQ(fs.accepted, fs.completed);
    // Every request of a function executes on its routed core.
    EXPECT_EQ(fs.core, value_or_die(server.routed_core(fs.name)));
  }
  EXPECT_EQ(fn_completed, total);
  EXPECT_EQ(tier_sum, total);

  uint64_t core_executed = 0;
  for (const CoreServeStats& cs : stats.cores) core_executed += cs.executed;
  EXPECT_EQ(core_executed, total);

  // The per-shard runtime counters agree with the deployment's sum.
  const Deployment::TierCounters tiers = server.deployment().tier_counters();
  uint64_t interp = 0, jitted = 0;
  for (size_t c = 0; c < server.num_cores(); ++c) {
    const Deployment::TierCounters shard =
        value_or_die(server.deployment().tier_counters_on(c));
    interp += shard.interpreted;
    jitted += shard.jitted;
  }
  EXPECT_EQ(interp, tiers.interpreted);
  EXPECT_EQ(jitted, tiers.jitted);
}

TEST(ServerTest, AdmissionControlRejectsAtWatermark) {
  const ModuleHandle suite = build_reduce_suite();
  // Never promote: every request interprets (slow), so a 1-deep queue
  // with 1 worker must shed most of a 64-request burst.
  const Engine engine = value_or_die(
      Engine::Builder()
          .tiered(/*promote_threshold=*/1000000)
          .serving({.workers = 1, .queue_depth = 1, .batch_max = 1})
          .build());
  Server server = value_or_die(
      serve(engine, suite, {{TargetKind::X86Sim, false}}));
  fill_data(server.deployment().memory());

  constexpr int kBurst = 64;
  std::vector<std::future<Result<SimResult>>> futures;
  futures.reserve(kBurst);
  const std::string fn(suite->function(0).name());
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(server.submit(fn, reduce_args()));
  }

  uint64_t completed = 0;
  uint64_t rejected = 0;
  for (auto& f : futures) {
    Result<SimResult> r = f.get();
    if (r.ok()) {
      ++completed;
    } else {
      ++rejected;
      EXPECT_NE(r.error_text().find("admission control"), std::string::npos)
          << r.error_text();
    }
  }
  EXPECT_GE(completed, 1u);
  EXPECT_GE(rejected, 1u) << "a 1-deep queue must shed a 64-request burst";

  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kBurst));
  EXPECT_EQ(stats.accepted + stats.rejected + stats.invalid,
            stats.submitted);
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_LE(stats.cores[0].peak_queue_depth, 1u);
}

TEST(ServerTest, BatchedAggregateTrafficPromotesToTier2) {
  const ModuleHandle suite = build_reduce_suite();
  // No background pool: promotion (4 calls) and tier-2 re-specialization
  // (8 tier-1 calls) compile synchronously at their thresholds, so the
  // tier sequence is deterministic. No single client's 8 calls would
  // cross both thresholds; the aggregate 64-call stream must.
  const Engine engine = value_or_die(Engine::Builder()
                                         .tiered(/*promote_threshold=*/4)
                                         .profiling()
                                         .tier2(/*threshold=*/8)
                                         .pool_threads(0)
                                         .build());
  Server server = value_or_die(
      serve(engine, suite, {{TargetKind::X86Sim, false}}));
  fill_data(server.deployment().memory());

  const std::string fn(suite->function(0).name());
  constexpr int kClients = 8;
  constexpr int kPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        Result<SimResult> r = server.submit(fn, reduce_args()).get();
        if (!r.ok() || !r->ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.stats();
  const FunctionServeStats* served = nullptr;
  for (const FunctionServeStats& fs : stats.functions) {
    if (fs.name == fn) served = &fs;
  }
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_GT(served->tier0, 0u) << "first calls interpret";
  EXPECT_GT(served->tier2, 0u)
      << "aggregate traffic must reach tier 2 (no client crossed the "
         "thresholds alone)";
  EXPECT_GT(stats.cores[0].tier2_calls, 0u);
  EXPECT_EQ(server.deployment().tier_counters().tier2_functions, 1u);
}

TEST(ServerTest, UnknownFunctionFailsFastAndCounts) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder().build());
  Server server = value_or_die(
      serve(engine, suite, {{TargetKind::X86Sim, false}}));

  Result<SimResult> r = server.submit("nope", {}).get();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("no function 'nope'"), std::string::npos);
  EXPECT_FALSE(server.routed_core("nope").ok());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(ServerTest, DestructionResolvesEveryAcceptedFuture) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(
      Engine::Builder().tiered(/*promote_threshold=*/1000000).build());
  std::vector<std::future<Result<SimResult>>> futures;
  {
    Server server = value_or_die(
        serve(engine, suite, {{TargetKind::X86Sim, false}}));
    fill_data(server.deployment().memory());
    const std::string fn(suite->function(1).name());
    futures.reserve(32);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(server.submit(fn, reduce_args()));
    }
    // Destroyed here, mid-traffic: the server must finish every accepted
    // request before the workers join.
  }
  for (auto& f : futures) {
    EXPECT_NO_THROW({
      Result<SimResult> r = f.get();  // resolved: result or rejection
      (void)r;
    });
  }
}

TEST(ServerTest, OptionValidationListsEveryProblem) {
  const Result<Engine> built =
      Engine::Builder().serving({.workers = 0, .queue_depth = 0,
                                 .batch_max = 0}).build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().size(), 2u);

  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(Engine::Builder().build());
  Deployment dep = value_or_die(
      engine.deploy(suite, {{TargetKind::X86Sim, false}}));
  Result<Server> server = Server::create(
      std::move(dep), {.workers = 0, .queue_depth = 0, .batch_max = 0});
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.error().size(), 2u);
}

TEST(ServerTest, WorkerCountClampsToCores) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(
      Engine::Builder()
          .serving({.workers = 64, .queue_depth = 8, .batch_max = 2})
          .build());
  Server server = value_or_die(
      serve(engine, suite,
            {{TargetKind::X86Sim, false}, {TargetKind::PpcSim, false}}));
  EXPECT_EQ(server.num_cores(), 2u);
  EXPECT_EQ(server.num_workers(), 2u)
      << "each core is drained by exactly one worker";
}

// --- the warm_up contract (api/deployment.h fix) ---------------------------

TEST(DeploymentWarmupTest, FutureStaysWaitablePastDeployment) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(
      Engine::Builder().tiered(1).pool_threads(2).build());
  std::future<void> warm;
  {
    Deployment dep = value_or_die(
        engine.deploy(suite, all_target_cores()));
    warm = dep.warm_up();
    // ~Deployment waits the job out, so the future is ready afterwards.
  }
  EXPECT_NO_THROW(warm.get());
}

TEST(DeploymentWarmupTest, DroppedFutureDoesNotDangle) {
  const ModuleHandle suite = build_reduce_suite();
  const Engine engine = value_or_die(
      Engine::Builder().tiered(1).pool_threads(2).build());
  Deployment dep = value_or_die(
      engine.deploy(suite, all_target_cores()));
  fill_data(dep.memory());
  (void)dep.warm_up();  // dropped immediately; the job must not dangle
  (void)dep.warm_up();  // concurrent with the first
  const SimResult r = value_or_die(
      dep.run(suite->function(0).name(), reduce_args()));
  EXPECT_TRUE(r.ok());
  // dep destroyed here while jobs may still be in flight.
}

}  // namespace
}  // namespace svc
