// The persistent on-disk artifact store (runtime/persistent_cache.h) and
// its wiring under the shared CodeCache. Acceptance properties from the
// warm-start ISSUE:
//  - corruption never crashes: a byte flip, a mid-record truncation, and
//    a stale build fingerprint each load as a clean miss with
//    cache.disk_rejects incremented, then recompile and overwrite;
//  - disk-loaded artifacts are bit-identical to freshly compiled ones
//    (values, simulated cycles, step counts, memory effects) on all four
//    targets;
//  - the precomputed CodeCacheKey hash agrees with key equality;
//  - concurrent write-back of one key from racing threads is safe (the
//    TSan CI job runs this binary);
//  - a second Engine boot against a populated store warms up with zero
//    JIT compiles.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "api/svc.h"
#include "test_util.h"

namespace svc {
namespace {

using namespace ::svc::testing;
namespace fs = std::filesystem;

/// Fresh store directory per test, removed on destruction.
struct TempStore {
  TempStore() {
    static std::atomic<int> counter{0};
    dir = (fs::temp_directory_path() /
           ("svc_pctest_" + std::to_string(static_cast<long long>(
#ifdef _WIN32
                                _getpid()
#else
                                getpid()
#endif
                                )) +
            "_" + std::to_string(counter.fetch_add(1))))
              .string();
    fs::remove_all(dir);
  }
  ~TempStore() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string dir;
};

Module build_suite_module() {
  Module m;
  m.set_name("persist_suite");
  m.add_function(build_scalar_saxpy());
  m.add_function(build_high_pressure());
  m.add_function(build_branchy_max_u8());
  m.add_function(build_vector_max_u8());
  m.add_function(build_vector_dot_f32());
  return m;
}

void fill_memory(Memory& mem) {
  Rng rng(7);
  for (uint32_t i = 0; i < 64; ++i) {
    mem.write_f32(0x1000 + 4 * i, rng.next_f32());
    mem.write_f32(0x2000 + 4 * i, rng.next_f32());
  }
  for (uint32_t i = 0; i < 256; ++i) {
    mem.store_u8(0x3000 + i, static_cast<uint8_t>(rng.next_u32()));
  }
}

/// Args for each function of build_suite_module, by index.
std::vector<std::vector<Value>> suite_args() {
  return {
      {Value::make_f32(1.5f), Value::make_i32(0x1000), Value::make_i32(0x2000),
       Value::make_i32(16)},                              // saxpy
      {Value::make_i32(0x1000)},                          // pressure16
      {Value::make_i32(0x3000), Value::make_i32(64)},     // smax_u8
      {Value::make_i32(0x3000), Value::make_i32(4)},      // vmax_u8
      {Value::make_i32(0x1000), Value::make_i32(0x2000),
       Value::make_i32(4)},                               // vdot_f32
  };
}

// --- the precomputed key hash (hot-path micro-optimization) ---------------

TEST(CodeCacheKey, PrecomputedHashAgreesWithEquality) {
  const CodeCacheKey a{7, 3, TargetKind::SparcSim, "opts=x", 2, 99};
  const CodeCacheKey b{7, 3, TargetKind::SparcSim, "opts=x", 2, 99};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());  // equal keys MUST collide
  EXPECT_EQ(CodeCacheKeyHash{}(a), a.hash());

  // Copies carry the hash verbatim.
  const CodeCacheKey c = a;
  EXPECT_EQ(c.hash(), a.hash());
  EXPECT_EQ(c, a);

  // Any field difference breaks equality (hashes may collide in theory,
  // equality must not).
  EXPECT_FALSE(a == CodeCacheKey(8, 3, TargetKind::SparcSim, "opts=x", 2, 99));
  EXPECT_FALSE(a == CodeCacheKey(7, 4, TargetKind::SparcSim, "opts=x", 2, 99));
  EXPECT_FALSE(a == CodeCacheKey(7, 3, TargetKind::PpcSim, "opts=x", 2, 99));
  EXPECT_FALSE(a == CodeCacheKey(7, 3, TargetKind::SparcSim, "opts=y", 2, 99));
  EXPECT_FALSE(a == CodeCacheKey(7, 3, TargetKind::SparcSim, "opts=x", 1, 99));
  EXPECT_FALSE(a == CodeCacheKey(7, 3, TargetKind::SparcSim, "opts=x", 2, 98));
}

// --- content hashing ------------------------------------------------------

TEST(PersistentCache, ContentHashTracksBodyAndInterface) {
  const Module m1 = build_call_module();  // add2 + combine (calls add2)
  const std::vector<uint64_t> h1 = PersistentCache::content_hashes(m1);
  ASSERT_EQ(h1.size(), 2u);

  // Identical module content (fresh process-local id): identical hashes.
  const std::vector<uint64_t> h1b =
      PersistentCache::content_hashes(build_call_module());
  EXPECT_EQ(h1, h1b);

  // Editing one body changes only that function's hash.
  Module m2;
  {
    m2.add_function(build_call_module().function(0));
    FunctionBuilder b("combine", {{Type::I32}, Type::I32});
    b.get(0).const_i32(5).call(0);  // different constant
    b.const_i32(3).const_i32(4).call(0);
    b.call(0).ret();
    m2.add_function(b.take());
  }
  const std::vector<uint64_t> h2 = PersistentCache::content_hashes(m2);
  EXPECT_EQ(h2[0], h1[0]);  // add2 untouched
  EXPECT_NE(h2[1], h1[1]);  // combine edited

  // Renaming the callee changes the module interface digest: EVERY hash
  // moves (call lowering depends on callee identity/signatures).
  Module m3;
  {
    FunctionBuilder b("add2_renamed", {{Type::I32, Type::I32}, Type::I32});
    b.get(0).get(1).op(Opcode::AddI32).ret();
    m3.add_function(b.take());
    m3.add_function(build_call_module().function(1));
  }
  const std::vector<uint64_t> h3 = PersistentCache::content_hashes(m3);
  EXPECT_NE(h3[0], h1[0]);
  EXPECT_NE(h3[1], h1[1]);
}

// --- corruption: every failure mode is a clean miss -----------------------

TEST(PersistentCache, CorruptEntriesRejectThenRecompileAndOverwrite) {
  const TempStore tmp;
  PersistentCache store = value_or_die(PersistentCache::open(tmp.dir));

  Module m;
  m.add_function(build_scalar_saxpy());
  const std::string options_key = JitOptions{}.cache_key();
  const PersistentCacheKey key{PersistentCache::content_hashes(m)[0], 0,
                               TargetKind::X86Sim, options_key, 1, 0};

  const JitCompiler jit(target_desc(TargetKind::X86Sim));
  const JitArtifact artifact = jit.compile(m, 0);
  ASSERT_TRUE(store.store(key, artifact));
  ASSERT_EQ(store.load(key).status, PersistentCache::LoadStatus::Hit);

  const std::string path = store.entry_path(key);
  ASSERT_TRUE(fs::exists(path));
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);

  // 1. Byte flip mid-file: CRC catches it.
  {
    std::vector<char> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    std::ofstream(path, std::ios::binary)
        .write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  EXPECT_EQ(store.load(key).status, PersistentCache::LoadStatus::Reject);

  // 2. Mid-record truncation.
  {
    std::ofstream(path, std::ios::binary)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(store.load(key).status, PersistentCache::LoadStatus::Reject);

  // 3. Stale build fingerprint (a store written by an incompatible
  // build): internally consistent, CRC-valid -- and still rejected.
  {
    const std::string stale = "schema=999;target=other;jit=old;compiler=v0";
    ASSERT_TRUE(store.store(key, artifact, &stale));
  }
  EXPECT_EQ(store.load(key).status, PersistentCache::LoadStatus::Reject);

  // Absent entry: a Miss, not a Reject.
  fs::remove(path);
  EXPECT_EQ(store.load(key).status, PersistentCache::LoadStatus::Miss);

  // Through the CodeCache: the stale entry rejects, the compile runs,
  // and the write-back overwrites the bad entry in place.
  {
    const std::string stale = "schema=999;target=other;jit=old;compiler=v0";
    ASSERT_TRUE(store.store(key, artifact, &stale));
  }
  CodeCache cache;
  cache.attach_persistent(&store);
  cache.register_module(m);
  int compiles = 0;
  const CodeCacheKey ck{m.id(), 0, TargetKind::X86Sim, options_key};
  const CodeCache::Artifact got = cache.get_or_compile(ck, [&] {
    ++compiles;
    return jit.compile(m, 0);
  });
  ASSERT_TRUE(got != nullptr);
  EXPECT_EQ(compiles, 1);
  EXPECT_EQ(cache.stats().get("cache.disk_rejects"), 1);
  EXPECT_EQ(cache.stats().get("cache.disk_misses"), 1);
  EXPECT_EQ(cache.stats().get("cache.disk_writes"), 1);
  // The overwrite healed the entry: a fresh cache now loads it from disk
  // without compiling.
  EXPECT_EQ(store.load(key).status, PersistentCache::LoadStatus::Hit);
  CodeCache cache2;
  cache2.attach_persistent(&store);
  cache2.register_module(m);
  int compiles2 = 0;
  (void)cache2.get_or_compile(ck, [&] {
    ++compiles2;
    return jit.compile(m, 0);
  });
  EXPECT_EQ(compiles2, 0);
  EXPECT_EQ(cache2.stats().get("cache.disk_hits"), 1);
  EXPECT_EQ(cache2.stats().get("cache.disk_rejects"), 0);
}

// --- bit identity on all four targets -------------------------------------

TEST(PersistentCache, WarmBootBitIdenticalOnAllTargets) {
  const TempStore tmp;
  const Module module = build_suite_module();
  const std::vector<std::vector<Value>> args = suite_args();

  std::vector<CoreSpec> cores;
  for (TargetKind kind : all_targets()) {
    cores.push_back({kind, kind == TargetKind::SpuSim});
  }

  SocOptions options;
  options.mode = LoadMode::Eager;
  options.persistent_cache_path = tmp.dir;

  // Boot 1: compiles everything, writes everything back.
  Soc cold(cores, 1 << 20, options);
  load_or_die(cold, module);
  const int64_t n_artifacts = cold.code_cache().stats().get("cache.compiles");
  EXPECT_EQ(n_artifacts,
            static_cast<int64_t>(cores.size() * module.num_functions()));
  EXPECT_EQ(cold.code_cache().stats().get("cache.disk_writes"), n_artifacts);
  fill_memory(cold.memory());

  // Boot 2: a fresh Soc against the same store loads everything from
  // disk -- zero CompileFn invocations.
  Soc warm(cores, 1 << 20, options);
  load_or_die(warm, module);
  EXPECT_EQ(warm.code_cache().stats().get("cache.compiles"), 0);
  EXPECT_EQ(warm.code_cache().stats().get("cache.disk_hits"), n_artifacts);
  EXPECT_EQ(warm.code_cache().stats().get("cache.disk_rejects"), 0);
  fill_memory(warm.memory());

  // Identical runs, bit for bit: values, simulated cycles, step counts,
  // and the full memory image, per core kind and function.
  for (size_t c = 0; c < cores.size(); ++c) {
    for (uint32_t f = 0; f < module.num_functions(); ++f) {
      const SimResult expect = cold.run_on(c, f, args[f]);
      const SimResult got = warm.run_on(c, f, args[f]);
      ASSERT_TRUE(expect.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value, expect.value)
          << module.function(f).name() << " on core " << c;
      EXPECT_EQ(got.stats.cycles, expect.stats.cycles)
          << module.function(f).name() << " on core " << c;
      EXPECT_EQ(got.stats.instructions, expect.stats.instructions)
          << module.function(f).name() << " on core " << c;
      EXPECT_EQ(got.tier, expect.tier);
    }
  }
  EXPECT_TRUE(std::equal(cold.memory().bytes().begin(),
                         cold.memory().bytes().end(),
                         warm.memory().bytes().begin()))
      << "memory effects diverged between fresh and disk-loaded code";
}

// --- concurrent write-back (exercised under TSan in CI) -------------------

TEST(PersistentCache, ConcurrentWriteBackOneStoreIsSafe) {
  const TempStore tmp;
  PersistentCache store = value_or_die(PersistentCache::open(tmp.dir));
  Module m;
  m.add_function(build_scalar_saxpy());
  m.add_function(build_high_pressure());
  const std::string options_key = JitOptions{}.cache_key();
  const JitCompiler jit(target_desc(TargetKind::X86Sim));

  // Two independent caches (two "processes") race write-back of the same
  // keys into one store: readers must only ever see complete entries.
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    CodeCache cache_a, cache_b;
    cache_a.attach_persistent(&store);
    cache_b.attach_persistent(&store);
    cache_a.register_module(m);
    cache_b.register_module(m);
    std::thread ta([&] {
      for (uint32_t f = 0; f < 2; ++f) {
        (void)cache_a.get_or_compile(
            CodeCacheKey{m.id(), f, TargetKind::X86Sim, options_key},
            [&, f] { return jit.compile(m, f); });
      }
    });
    std::thread tb([&] {
      for (uint32_t f = 0; f < 2; ++f) {
        (void)cache_b.get_or_compile(
            CodeCacheKey{m.id(), f, TargetKind::X86Sim, options_key},
            [&, f] { return jit.compile(m, f); });
      }
    });
    ta.join();
    tb.join();
  }

  // Whoever won, the published entries are valid.
  const std::vector<uint64_t> hashes = PersistentCache::content_hashes(m);
  for (uint32_t f = 0; f < 2; ++f) {
    const PersistentCacheKey key{hashes[f], f, TargetKind::X86Sim,
                                 options_key, 1, 0};
    EXPECT_EQ(store.load(key).status, PersistentCache::LoadStatus::Hit);
  }
  // No leftover temp files from the racing writers.
  for (const fs::directory_entry& e : fs::directory_iterator(tmp.dir)) {
    EXPECT_EQ(e.path().extension(), ".svcc")
        << "unexpected file in store: " << e.path();
  }
}

// --- the Engine facade ----------------------------------------------------

TEST(PersistentCache, BuilderRejectsUnusablePath) {
  const TempStore tmp;
  fs::create_directories(tmp.dir);
  const std::string file_path = tmp.dir + "/not_a_directory";
  std::ofstream(file_path) << "occupied";

  const Result<Engine> engine =
      Engine::Builder().persistent_cache(file_path).build();
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.error_text().find("persistent_cache"), std::string::npos);
}

TEST(PersistentCache, EngineSecondBootWarmsUpWithZeroCompiles) {
  const TempStore tmp;
  const std::vector<CoreSpec> cores = {{TargetKind::X86Sim, false},
                                       {TargetKind::SparcSim, false}};
  const std::vector<std::vector<Value>> args = suite_args();

  const auto make_engine = [&] {
    return value_or_die(Engine::Builder()
                            .tiered(/*promote_threshold=*/1)
                            .persistent_cache(tmp.dir)
                            .build());
  };

  Value first_value;
  {
    const Engine engine = make_engine();
    Deployment dep = value_or_die(
        engine.deploy(ModuleHandle::adopt(build_suite_module()), cores));
    dep.warm_up().get();
    const Statistics stats = dep.cache_stats();
    EXPECT_GT(stats.get("cache.compiles"), 0);
    EXPECT_EQ(stats.get("cache.disk_writes"), stats.get("cache.compiles"));
    fill_memory(dep.memory());
    const SimResult r = value_or_die(dep.run("vdot_f32", args[4]));
    ASSERT_TRUE(r.ok());
    first_value = r.value;
  }

  // Second boot: fresh Engine, fresh Deployment, same store.
  const Engine engine = make_engine();
  Deployment dep = value_or_die(
      engine.deploy(ModuleHandle::adopt(build_suite_module()), cores));
  dep.warm_up().get();
  const Statistics stats = dep.cache_stats();
  EXPECT_EQ(stats.get("cache.compiles"), 0);
  EXPECT_GT(stats.get("cache.disk_hits"), 0);
  EXPECT_EQ(stats.get("cache.disk_rejects"), 0);
  fill_memory(dep.memory());
  const SimResult r = value_or_die(dep.run("vdot_f32", args[4]));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, first_value);
  EXPECT_GE(r.tier, 1);  // warm deployment serves JITed code immediately
}

}  // namespace
}  // namespace svc
