// Vectorizer-specific tests: which loops must transform, which must be
// declined (safety bail-outs), and that declined or transformed loops are
// always still correct end to end. The bail-out cases are the dependence
// and shape hazards a production vectorizer must refuse.
#include <gtest/gtest.h>

#include "bytecode/disassembler.h"
#include "driver/kernels.h"
#include "driver/offline_compiler.h"
#include "frontend/irgen.h"
#include "frontend/parser.h"
#include "ir/passes.h"
#include "ir/vectorizer.h"
#include "test_util.h"

namespace svc {
namespace {

using ::svc::testing::value_or_die;

/// Compiles and reports how many loops were vectorized.
int64_t vectorized_loops(std::string_view src) {
  Statistics stats;
  auto m = compile_module(src, {}, &stats);
  EXPECT_TRUE(m.ok()) << m.error_text();
  return stats.get("offline.loops_vectorized");
}

/// Runs `fn_name` of compiled `src` on interpreter + all targets and
/// checks identical results (whatever the vectorizer decided).
void check_correct(std::string_view src, std::string_view fn_name,
                   const std::vector<Value>& args,
                   const std::function<void(Memory&)>& setup) {
  const Module m = value_or_die(compile_module(src));
  svc::testing::run_differential(m, fn_name, args, setup);
}

TEST(Vectorizer, OffsetAccessVectorizes) {
  // in[i + 1]: the dependence test must decompose the displaced index.
  const char* src = R"(
    fn shift(out: *f32, in: *f32, n: i32) {
      var i: i32 = 0;
      while (i < n) {
        out[i] = in[i + 1];
        i = i + 1;
      }
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 1);
  check_correct(src, "shift",
                {Value::make_i32(1024), Value::make_i32(8192),
                 Value::make_i32(33)},
                [](Memory& mem) {
                  for (int i = 0; i < 40; ++i) {
                    mem.write_f32(8192 + 4 * static_cast<uint32_t>(i),
                                  1.5f * i);
                  }
                });
}

TEST(Vectorizer, FirStyleTwoTapVectorizes) {
  EXPECT_GE(vectorized_loops(fir_source()), 3);
}

TEST(Vectorizer, F32SumUsesVectorAccumulator) {
  const char* src = R"(
    fn fsum(x: *f32, n: i32) -> f32 {
      var s: f32 = 0.0;
      var i: i32 = 0;
      while (i < n) { s = s + x[i]; i = i + 1; }
      return s;
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 1);
  const Module m = value_or_die(compile_module(src));
  const std::string text = disassemble(m);
  EXPECT_NE(text.find("v.add.f32"), std::string::npos);
  EXPECT_NE(text.find("v.rsum.f32"), std::string::npos);
  check_correct(src, "fsum", {Value::make_i32(4096), Value::make_i32(25)},
                [](Memory& mem) {
                  for (int i = 0; i < 32; ++i) {
                    mem.write_f32(4096 + 4 * static_cast<uint32_t>(i),
                                  0.125f * i);
                  }
                });
}

TEST(Vectorizer, MinReductionVectorizes) {
  const char* src = R"(
    fn bmin(p: *u8, n: i32) -> i32 {
      var m: i32 = 255;
      var i: i32 = 0;
      while (i < n) { m = min_u(m, p[i]); i = i + 1; }
      return m;
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 1);
  check_correct(src, "bmin", {Value::make_i32(2048), Value::make_i32(77)},
                [](Memory& mem) {
                  Rng rng(5);
                  for (int i = 0; i < 80; ++i) {
                    mem.store_u8(2048 + static_cast<uint32_t>(i),
                                 static_cast<uint8_t>(64 + rng.next_below(64)));
                  }
                });
}

// --- bail-outs: all must decline AND stay correct ------------------------

TEST(VectorizerBail, NonUnitStride) {
  const char* src = R"(
    fn strided(x: *f32, n: i32) {
      var i: i32 = 0;
      while (i < n) { x[i * 2] = 1.0; i = i + 1; }
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
}

TEST(VectorizerBail, SameBaseShiftedStore) {
  // x[i+1] = x[i]: a loop-carried dependence (distance 1); vectorizing
  // would propagate x[0] through the whole vector. Must decline.
  const char* src = R"(
    fn prop(x: *f32, n: i32) {
      var i: i32 = 0;
      while (i < n) { x[i + 1] = x[i]; i = i + 1; }
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
  check_correct(src, "prop", {Value::make_i32(1024), Value::make_i32(20)},
                [](Memory& mem) {
                  for (int i = 0; i < 24; ++i) {
                    mem.write_f32(1024 + 4 * static_cast<uint32_t>(i),
                                  static_cast<float>(i));
                  }
                });
}

TEST(VectorizerBail, InductionUsedAsData) {
  const char* src = R"(
    fn iota(x: *i32, n: i32) {
      var i: i32 = 0;
      while (i < n) { x[i] = i; i = i + 1; }
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
}

TEST(VectorizerBail, CallInLoop) {
  const char* src = R"(
    fn sq(v: f32) -> f32 { return v * v; }
    fn apply(x: *f32, n: i32) {
      var i: i32 = 0;
      while (i < n) { x[i] = sq(x[i]); i = i + 1; }
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
}

TEST(VectorizerBail, BranchyBody) {
  // Two-block body (data-dependent if) without if-conversion.
  EXPECT_EQ(vectorized_loops(branchy_max_kernel().source), 0);
}

TEST(VectorizerBail, F64Loop) {
  // v128 has no f64 lanes; must stay scalar and correct.
  const char* src = R"(
    fn dsum(x: *f64, n: i32) -> f64 {
      var s: f64 = 0.0;
      var i: i32 = 0;
      while (i < n) { s = s + x[i]; i = i + 1; }
      return s;
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
}

TEST(VectorizerBail, NarrowArithmeticOtherThanMinMax) {
  // u8 add feeding a store would need wraparound-preserving lanes; the
  // conservative rule declines (only min/max elementwise on narrow lanes).
  const char* src = R"(
    fn badd(c: *u8, a: *u8, b: *u8, n: i32) {
      var i: i32 = 0;
      while (i < n) { c[i] = a[i] + b[i]; i = i + 1; }
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
  check_correct(src, "badd",
                {Value::make_i32(512), Value::make_i32(1024),
                 Value::make_i32(2048), Value::make_i32(50)},
                [](Memory& mem) {
                  Rng rng(3);
                  for (int i = 0; i < 64; ++i) {
                    mem.store_u8(1024 + static_cast<uint32_t>(i),
                                 static_cast<uint8_t>(rng.next_u32()));
                    mem.store_u8(2048 + static_cast<uint32_t>(i),
                                 static_cast<uint8_t>(rng.next_u32()));
                  }
                });
}

TEST(VectorizerBail, MaxWithUnprovableInit) {
  // Reduction seed comes from memory: cannot prove it fits u8 lanes.
  const char* src = R"(
    fn maxseed(p: *u8, n: i32, seed: i32) -> i32 {
      var m: i32 = seed;
      var i: i32 = 0;
      while (i < n) { m = max_u(m, p[i]); i = i + 1; }
      return m;
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
  // And it must be correct with a seed ABOVE the lane range.
  check_correct(src, "maxseed",
                {Value::make_i32(1024), Value::make_i32(40),
                 Value::make_i32(1000)},
                [](Memory& mem) {
                  for (int i = 0; i < 48; ++i) {
                    mem.store_u8(1024 + static_cast<uint32_t>(i),
                                 static_cast<uint8_t>(i));
                  }
                });
}

TEST(VectorizerBail, ValueEscapingLoop) {
  // The last element value is observed after the loop; the vector body
  // would leave a different temp behind. Must decline.
  const char* src = R"(
    fn escape(x: *f32, n: i32) -> f32 {
      var last: f32 = 0.0;
      var i: i32 = 0;
      while (i < n) { last = x[i]; i = i + 1; }
      return last;
    }
  )";
  EXPECT_EQ(vectorized_loops(src), 0);
}

TEST(Vectorizer, EpilogueHandlesAllRemainders) {
  // Property sweep: n from 0..40 over a map and a reduction kernel, all
  // results must equal the scalar build's results.
  const std::string_view mapk = table1_kernels()[2].source;  // dscal
  const std::string_view redk = table1_kernels()[4].source;  // sum u8
  OfflineOptions scalar_opts;
  scalar_opts.vectorize = false;
  const Module mv = value_or_die(compile_module(mapk));
  const Module ms = value_or_die(compile_module(mapk, scalar_opts));
  const Module rv = value_or_die(compile_module(redk));
  const Module rs = value_or_die(compile_module(redk, scalar_opts));
  for (int n = 0; n <= 40; ++n) {
    // dscal: compare memory.
    Memory m1(1 << 16), m2(1 << 16);
    for (int i = 0; i < 64; ++i) {
      m1.write_f32(1024 + 4 * static_cast<uint32_t>(i), 1.0f + i);
      m2.write_f32(1024 + 4 * static_cast<uint32_t>(i), 1.0f + i);
    }
    Interpreter i1(mv, m1), i2(ms, m2);
    const std::vector<Value> dargs = {Value::make_f32(0.5f),
                                      Value::make_i32(1024),
                                      Value::make_i32(n)};
    ASSERT_TRUE(i1.run("dscal", dargs).ok()) << n;
    ASSERT_TRUE(i2.run("dscal", dargs).ok()) << n;
    ASSERT_TRUE(std::equal(m1.bytes().begin(), m1.bytes().end(),
                           m2.bytes().begin()))
        << "dscal n=" << n;
    // sum u8: compare values.
    Memory m3(1 << 16);
    Rng rng(static_cast<uint64_t>(n));
    for (int i = 0; i < 64; ++i) {
      m3.store_u8(2048 + static_cast<uint32_t>(i),
                  static_cast<uint8_t>(rng.next_u32()));
    }
    Interpreter i3(rv, m3), i4(rs, m3);
    const std::vector<Value> rargs = {Value::make_i32(2048),
                                      Value::make_i32(n)};
    const auto a = i3.run("sum_u8", rargs);
    const auto b = i4.run("sum_u8", rargs);
    ASSERT_TRUE(a.ok() && b.ok()) << n;
    EXPECT_EQ(a.value->i32, b.value->i32) << "sum_u8 n=" << n;
  }
}

TEST(Vectorizer, AnnotationMatchesTransform) {
  const Module m = value_or_die(compile_module(table1_kernels()[0].source));
  const auto* ann = find_annotation(m.function(0).annotations(),
                                    AnnotationKind::VectorizedLoop);
  ASSERT_NE(ann, nullptr);
  const auto info = VectorizedLoopInfo::decode(ann->payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->vector_factor, 4u);  // f32 lanes
  EXPECT_TRUE(info->has_epilogue);
  EXPECT_LT(info->header_block, m.function(0).num_blocks());
}

TEST(Vectorizer, U16FactorIsEight) {
  const Module m = value_or_die(compile_module(table1_kernels()[5].source));  // sum u16
  const auto* ann = find_annotation(m.function(0).annotations(),
                                    AnnotationKind::VectorizedLoop);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(VectorizedLoopInfo::decode(ann->payload)->vector_factor, 8u);
}

}  // namespace
}  // namespace svc
