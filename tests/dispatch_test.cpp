// Differential tests for the threaded-dispatch tier-0 engine
// (vm/dispatch_threaded.cpp + vm/predecode.cpp) against the reference
// switch interpreter, which defines the semantics.
//
// Coverage contract, asserted at the bottom of this file: every opcode in
// bytecode/opcodes.def executes through both engines, and every
// superinstruction in vm/fused_ops.def is both emitted by the pre-decoder
// and executed fused. Each comparison checks results (bit-identical
// Values), traps, dynamic step counts, final memory bytes, and -- for the
// profiling runs -- the complete collected ProfileData.
//
// When the build carries no computed-goto engine (SVC_THREADED_DISPATCH
// OFF or a non-GNU compiler), Threaded requests fall back to the switch
// engine and every comparison here degenerates to oracle-vs-oracle; the
// test still validates the pre-decoder.

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <set>
#include <string>

#include "test_util.h"
#include "vm/predecode.h"

namespace svc {
namespace {

using ::svc::testing::build_call_module;
using ::svc::testing::expect_verifies;

// Opcodes observed (statically) in differentially-tested modules; the
// final test asserts this covers the whole opcode table.
std::set<Opcode>& covered_ops() {
  static std::set<Opcode> ops;
  return ops;
}

// Fused POps observed in pre-decoded streams of tested modules.
std::set<POp>& covered_fused() {
  static std::set<POp> ops;
  return ops;
}

struct RunOut {
  ExecResult r;
  std::vector<uint8_t> mem;
  ProfileData prof;
};

RunOut run_one(const Module& m, uint32_t fn, const std::vector<Value>& args,
               DispatchKind kind, bool fusion, bool profile, uint64_t budget,
               const std::function<void(Memory&)>& setup) {
  Memory mem(1 << 16);
  if (setup) setup(mem);
  Interpreter interp(m, mem);
  interp.set_dispatch(kind);
  interp.set_fusion(fusion);
  interp.set_step_budget(budget);
  RunOut out;
  out.prof.reset(m.num_functions());
  if (profile) interp.set_profile(&out.prof);
  out.r = interp.run(fn, args);
  out.mem.resize(mem.size());
  for (uint32_t a = 0; a < mem.size(); ++a) out.mem[a] = mem.load_u8(a);
  return out;
}

void expect_same_exec(const RunOut& want, const RunOut& got,
                      const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(want.r.trap, got.r.trap) << got.r.trap_message();
  EXPECT_EQ(want.r.steps, got.r.steps);
  ASSERT_EQ(want.r.value.has_value(), got.r.value.has_value());
  if (want.r.value.has_value()) {
    EXPECT_TRUE(*want.r.value == *got.r.value)
        << "want " << want.r.value->str() << " got " << got.r.value->str();
  }
  EXPECT_EQ(want.mem, got.mem);
}

void expect_same_profile(const RunOut& want, const RunOut& got) {
  ASSERT_EQ(want.prof.num_functions(), got.prof.num_functions());
  for (uint32_t f = 0; f < want.prof.num_functions(); ++f) {
    EXPECT_TRUE(want.prof.function(f) == got.prof.function(f))
        << "profile mismatch in function " << f;
  }
}

void record_coverage(const Module& m) {
  for (uint32_t f = 0; f < m.num_functions(); ++f) {
    const Function& fn = m.function(f);
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
      for (const Instruction& inst : fn.block(b).insts) {
        covered_ops().insert(inst.op);
      }
    }
    const PCode pc = predecode(m, f, /*fuse=*/true);
    for (const PInst& p : pc.code) {
      if (is_fused_op(p.op)) covered_fused().insert(p.op);
    }
  }
}

/// The full differential matrix for one call: switch oracle vs threaded
/// fused, threaded unfused, and the profiling instantiation (with fusion
/// requested, proving profiling forces the unfused stream).
void diff_all(const Module& m, uint32_t fn, const std::vector<Value>& args,
              uint64_t budget = uint64_t{1} << 20,
              const std::function<void(Memory&)>& setup = {}) {
  expect_verifies(m);
  record_coverage(m);
  const RunOut oracle =
      run_one(m, fn, args, DispatchKind::Switch, false, false, budget, setup);
  expect_same_exec(oracle,
                   run_one(m, fn, args, DispatchKind::Threaded, true, false,
                           budget, setup),
                   "threaded+fused");
  expect_same_exec(oracle,
                   run_one(m, fn, args, DispatchKind::Threaded, false, false,
                           budget, setup),
                   "threaded-unfused");
  const RunOut oracle_p =
      run_one(m, fn, args, DispatchKind::Switch, false, true, budget, setup);
  const RunOut threaded_p = run_one(m, fn, args, DispatchKind::Threaded, true,
                                    true, budget, setup);
  expect_same_exec(oracle_p, threaded_p, "threaded+profile");
  expect_same_profile(oracle_p, threaded_p);
}

Module single_fn_module(Function fn) {
  Module m;
  m.add_function(std::move(fn));
  return m;
}

void diff_fn(Function fn, const std::vector<Value>& args,
             uint64_t budget = uint64_t{1} << 20,
             const std::function<void(Memory&)>& setup = {}) {
  diff_all(single_fn_module(std::move(fn)), 0, args, budget, setup);
}

/// Pushes one operand of signature code `c`; `variant` varies the value
/// so binary ops see asymmetric inputs.
void emit_operand(FunctionBuilder& b, char c, int variant) {
  switch (c) {
    case 'i': b.const_i32(variant == 0 ? 41 : -7); break;
    case 'l': b.const_i64(variant == 0 ? (int64_t{1} << 40) + 9 : -5); break;
    case 'f': b.const_f32(variant == 0 ? 2.5f : -0.75f); break;
    case 'd': b.const_f64(variant == 0 ? 3.25 : -1.5); break;
    case 'v':
      b.const_i32(17 + variant * 10).op(Opcode::VSplatI8);
      break;
    default: FAIL() << "unknown operand code " << c;
  }
}

void fill_pattern(Memory& mem) {
  for (uint32_t a = 0; a < 256; ++a) {
    mem.store_u8(a, static_cast<uint8_t>(a * 37 + 1));
  }
}

// The loop used by budget-sweep and profile tests. Lowered fused it
// contains FConstI32Set, FGetGetLtSBr, FGetGetAddI32 and FIncLocalI32, so
// a budget trap can land mid-group at several distinct offsets.
//   f(n): sum = 0; for (i = 0; i < n; ++i) sum += i; return sum
Function build_sum_loop() {
  FunctionBuilder b("sum_loop", {{Type::I32}, Type::I32});
  const uint32_t i = b.add_local(Type::I32);
  const uint32_t sum = b.add_local(Type::I32);
  const uint32_t head = b.new_block();
  const uint32_t body = b.new_block();
  const uint32_t done = b.new_block();
  b.const_i32(0).set(i).const_i32(0).set(sum).jump(head);
  b.switch_to(head);
  b.get(i).get(0).op(Opcode::LtSI32).br_if(body, done);
  b.switch_to(body);
  b.get(sum).get(i).op(Opcode::AddI32).set(sum);
  b.get(i).const_i32(1).op(Opcode::AddI32).set(i);
  b.jump(head);
  b.switch_to(done);
  b.get(sum).ret();
  return b.take();
}

// --- exhaustive per-opcode sweep -----------------------------------------

TEST(DispatchDiff, EveryValueOpcode) {
  // Ops with dedicated control/local/call tests below; everything else is
  // generated from its OpInfo stack signature.
  const std::set<Opcode> dedicated = {
      Opcode::LocalGet, Opcode::LocalSet, Opcode::Jump, Opcode::BranchIf,
      Opcode::Ret,      Opcode::Trap,     Opcode::Call, Opcode::Drop,
      Opcode::Nop,
  };
  for (size_t oi = 0; oi < kNumOpcodes; ++oi) {
    const Opcode op = static_cast<Opcode>(oi);
    if (dedicated.count(op)) continue;
    const OpInfo& info = op_info(op);
    SCOPED_TRACE(info.mnemonic);
    FunctionBuilder b("t", {{}, info.push_type()});
    int variant = 0;
    for (const char c : info.pops) emit_operand(b, c, variant++);
    switch (info.imm) {
      case ImmKind::NoImm: b.op(op); break;
      case ImmKind::I64: b.emit(Instruction::with_imm(op, -123456789)); break;
      case ImmKind::F32: b.emit(Instruction::with_f32(op, -12.375f)); break;
      case ImmKind::F64: b.emit(Instruction::with_f64(op, 6.02e23)); break;
      case ImmKind::MemOff: b.emit(Instruction::with_imm(op, 4)); break;
      case ImmKind::Lane: b.lane_op(op, 1); break;
      default: FAIL() << "unexpected imm kind for " << info.mnemonic;
    }
    b.ret();
    diff_fn(b.take(), {}, uint64_t{1} << 20, fill_pattern);
  }
}

// Float edge cases: NaN payloads, signed zeros, infinities must stay
// bit-identical through both engines.
TEST(DispatchDiff, FloatEdgeCases) {
  const float f_cases[][2] = {
      {0.0f, -0.0f},
      {std::numeric_limits<float>::quiet_NaN(), 1.0f},
      {std::numeric_limits<float>::infinity(), -1.0f},
      {1.0f, 0.0f},
  };
  for (const auto& c : f_cases) {
    for (const Opcode op : {Opcode::AddF32, Opcode::DivF32, Opcode::MinF32,
                            Opcode::MaxF32, Opcode::EqF32, Opcode::LtF32}) {
      FunctionBuilder b("t", {{}, op_info(op).push_type()});
      b.const_f32(c[0]).const_f32(c[1]).op(op).ret();
      diff_fn(b.take(), {});
    }
  }
  FunctionBuilder b("t", {{}, Type::F64});
  b.const_f64(std::numeric_limits<double>::quiet_NaN())
      .const_f64(0.0)
      .op(Opcode::MaxF64)
      .ret();
  diff_fn(b.take(), {});
}

// --- locals, control, calls ----------------------------------------------

TEST(DispatchDiff, LocalsAndControl) {
  // Locals of every type, a diamond and a loop; covers LocalGet/LocalSet/
  // Jump/BranchIf/Ret/Nop/Drop.
  FunctionBuilder b("ctl", {{Type::I32}, Type::I32});
  const uint32_t l64 = b.add_local(Type::I64);
  const uint32_t acc = b.add_local(Type::I32);
  const uint32_t then_b = b.new_block();
  const uint32_t else_b = b.new_block();
  const uint32_t join = b.new_block();
  b.op(Opcode::Nop);
  b.const_i64(7).set(l64);
  b.const_i32(99).op(Opcode::Drop);
  b.get(0).br_if(then_b, else_b);
  b.switch_to(then_b);
  b.get(l64).op(Opcode::I64ToI32).set(acc).jump(join);
  b.switch_to(else_b);
  b.const_i32(-1).set(acc).jump(join);
  b.switch_to(join);
  b.get(acc).ret();
  Module m = single_fn_module(b.take());
  diff_all(m, 0, {Value::make_i32(1)});
  diff_all(m, 0, {Value::make_i32(0)});
}

TEST(DispatchDiff, VoidReturn) {
  FunctionBuilder b("v", {{}, Type::Void});
  b.const_i32(8).const_i32(5).store(Opcode::StoreI32, 0);
  b.ret();
  diff_fn(b.take(), {});
}

TEST(DispatchDiff, Calls) {
  Module m = build_call_module();
  diff_all(m, 1, {Value::make_i32(5)});
}

TEST(DispatchDiff, RecursionAndStackOverflow) {
  // f(n) = n <= 0 ? 0 : n + f(n - 1); unbounded for n < 0 via wraparound
  // guard -- used both converging and overflowing.
  FunctionBuilder b("rec", {{Type::I32}, Type::I32});
  const uint32_t base = b.new_block();
  const uint32_t rec = b.new_block();
  b.get(0).const_i32(0).op(Opcode::LeSI32).br_if(base, rec);
  b.switch_to(base);
  b.const_i32(0).ret();
  b.switch_to(rec);
  b.get(0).get(0).const_i32(-1).op(Opcode::AddI32).call(0).op(Opcode::AddI32);
  b.ret();
  Module m = single_fn_module(b.take());
  diff_all(m, 0, {Value::make_i32(10)});
  // 1000 frames deep exceeds the default 256-deep call stack.
  diff_all(m, 0, {Value::make_i32(1000)});
}

// --- traps ----------------------------------------------------------------

TEST(DispatchDiff, ArithmeticTraps) {
  const struct {
    Opcode op;
    int32_t a, b;
  } cases[] = {
      {Opcode::DivSI32, 1, 0},
      {Opcode::DivUI32, 1, 0},
      {Opcode::RemSI32, 1, 0},
      {Opcode::RemUI32, 1, 0},
      {Opcode::DivSI32, std::numeric_limits<int32_t>::min(), -1},
      {Opcode::RemSI32, std::numeric_limits<int32_t>::min(), -1},  // == 0
  };
  for (const auto& c : cases) {
    FunctionBuilder b("t", {{}, Type::I32});
    b.const_i32(c.a).const_i32(c.b).op(c.op).ret();
    diff_fn(b.take(), {});
  }
  FunctionBuilder b64("t64", {{}, Type::I64});
  b64.const_i64(std::numeric_limits<int64_t>::min())
      .const_i64(-1)
      .op(Opcode::DivSI64)
      .ret();
  diff_fn(b64.take(), {});
  FunctionBuilder bz("tz", {{}, Type::I64});
  bz.const_i64(5).const_i64(0).op(Opcode::DivSI64).ret();
  diff_fn(bz.take(), {});
}

TEST(DispatchDiff, MemoryTraps) {
  // In-bounds base + large offset, out-of-bounds base, and the last valid
  // byte, for a load and a store.
  const int64_t cases[][2] = {
      {(1 << 16) - 4, 0},  // last valid u32 slot
      {(1 << 16) - 3, 0},  // one past
      {0, (1 << 16)},      // offset pushes out of bounds
      {-1, 0},             // address wraps as u32: far out of bounds
  };
  for (const auto& c : cases) {
    FunctionBuilder lb("ld", {{}, Type::I32});
    lb.const_i32(static_cast<int32_t>(c[0])).load(Opcode::LoadI32, c[1]).ret();
    diff_fn(lb.take(), {}, uint64_t{1} << 20, fill_pattern);

    FunctionBuilder sb("st", {{}, Type::Void});
    sb.const_i32(static_cast<int32_t>(c[0]))
        .const_i32(-559038737)
        .store(Opcode::StoreI32, c[1]);
    sb.ret();
    diff_fn(sb.take(), {}, uint64_t{1} << 20, fill_pattern);
  }
}

TEST(DispatchDiff, ExplicitTrap) {
  FunctionBuilder b("t", {{}, Type::I32});
  b.op(Opcode::Trap);
  diff_fn(b.take(), {});
}

// --- step budgets ---------------------------------------------------------

TEST(DispatchDiff, BudgetSweepThroughFusedGroups) {
  // Every budget from 0 to past the full run: the trap lands on every
  // possible instruction, including inside each fused group, and both
  // engines must agree on trap kind and exact step count throughout.
  Module m = single_fn_module(build_sum_loop());
  expect_verifies(m);
  record_coverage(m);
  const std::vector<Value> args = {Value::make_i32(5)};
  const RunOut full = run_one(m, 0, args, DispatchKind::Switch, false, false,
                              uint64_t{1} << 20, {});
  ASSERT_TRUE(full.r.ok());
  for (uint64_t budget = 0; budget <= full.r.steps + 2; ++budget) {
    SCOPED_TRACE(budget);
    const RunOut oracle =
        run_one(m, 0, args, DispatchKind::Switch, false, false, budget, {});
    expect_same_exec(oracle,
                     run_one(m, 0, args, DispatchKind::Threaded, true, false,
                             budget, {}),
                     "threaded+fused");
    const RunOut oracle_p =
        run_one(m, 0, args, DispatchKind::Switch, false, true, budget, {});
    const RunOut threaded_p =
        run_one(m, 0, args, DispatchKind::Threaded, true, true, budget, {});
    expect_same_exec(oracle_p, threaded_p, "threaded+profile");
    expect_same_profile(oracle_p, threaded_p);
  }
}

TEST(DispatchDiff, BudgetSweepAcrossCalls) {
  Module m = build_call_module();
  expect_verifies(m);
  const std::vector<Value> args = {Value::make_i32(5)};
  const RunOut full = run_one(m, 1, args, DispatchKind::Switch, false, false,
                              uint64_t{1} << 20, {});
  ASSERT_TRUE(full.r.ok());
  for (uint64_t budget = 0; budget <= full.r.steps + 2; ++budget) {
    SCOPED_TRACE(budget);
    const RunOut oracle =
        run_one(m, 1, args, DispatchKind::Switch, false, false, budget, {});
    expect_same_exec(oracle,
                     run_one(m, 1, args, DispatchKind::Threaded, true, false,
                             budget, {}),
                     "threaded+fused");
  }
}

// --- superinstructions ----------------------------------------------------

TEST(DispatchDiff, FusedPatterns) {
  // One function per fusion-table pattern, checked differentially and for
  // actual superinstruction emission.
  struct Pattern {
    const char* name;
    std::function<Function()> build;
  };
  const auto cmp_br_fn = [](Opcode cmp) {
    return [cmp]() {
      FunctionBuilder b("cmpbr", {{Type::I32, Type::I32}, Type::I32});
      const uint32_t t = b.new_block();
      const uint32_t f = b.new_block();
      b.get(0).get(1).op(cmp).br_if(t, f);
      b.switch_to(t);
      b.const_i32(1).ret();
      b.switch_to(f);
      b.const_i32(0).ret();
      return b.take();
    };
  };
  const std::vector<Pattern> patterns = {
      {"get.get.add.i32",
       [] {
         FunctionBuilder b("p", {{Type::I32, Type::I32}, Type::I32});
         b.get(0).get(1).op(Opcode::AddI32).ret();
         return b.take();
       }},
      {"get.get.add.f32",
       [] {
         FunctionBuilder b("p", {{Type::F32, Type::F32}, Type::F32});
         b.get(0).get(1).op(Opcode::AddF32).ret();
         return b.take();
       }},
      {"get.get.mul.f32",
       [] {
         FunctionBuilder b("p", {{Type::F32, Type::F32}, Type::F32});
         b.get(0).get(1).op(Opcode::MulF32).ret();
         return b.take();
       }},
      {"get.const.add.i32",
       [] {
         FunctionBuilder b("p", {{Type::I32}, Type::I32});
         b.get(0).const_i32(100).op(Opcode::AddI32).ret();
         return b.take();
       }},
      {"inc.local.i32",
       [] {
         FunctionBuilder b("p", {{Type::I32}, Type::I32});
         b.get(0).const_i32(3).op(Opcode::AddI32).set(0);
         b.get(0).ret();
         return b.take();
       }},
      {"const.set.i32",
       [] {
         FunctionBuilder b("p", {{}, Type::I32});
         const uint32_t l = b.add_local(Type::I32);
         b.const_i32(42).set(l);
         b.get(l).ret();
         return b.take();
       }},
      {"get.set",
       [] {
         FunctionBuilder b("p", {{Type::I64}, Type::I64});
         const uint32_t l = b.add_local(Type::I64);
         b.get(0).set(l);
         b.get(l).ret();
         return b.take();
       }},
      {"get.get.lt_s.br",
       [] {
         FunctionBuilder b("p", {{Type::I32, Type::I32}, Type::I32});
         const uint32_t t = b.new_block();
         const uint32_t f = b.new_block();
         b.get(0).get(1).op(Opcode::LtSI32).br_if(t, f);
         b.switch_to(t);
         b.const_i32(7).ret();
         b.switch_to(f);
         b.const_i32(8).ret();
         return b.take();
       }},
      {"eqz.br",
       [] {
         FunctionBuilder b("p", {{Type::I32}, Type::I32});
         const uint32_t t = b.new_block();
         const uint32_t f = b.new_block();
         b.get(0).op(Opcode::EqzI32).br_if(t, f);
         b.switch_to(t);
         b.const_i32(1).ret();
         b.switch_to(f);
         b.const_i32(0).ret();
         return b.take();
       }},
      {"lt_s.i32.br",
       [] {
         // A lone LtSI32+BranchIf (operands off the stack, not two
         // LocalGets, which would fuse into FGetGetLtSBr instead).
         FunctionBuilder b("p", {{Type::I32}, Type::I32});
         const uint32_t t = b.new_block();
         const uint32_t f = b.new_block();
         b.const_i32(4).get(0).op(Opcode::LtSI32).br_if(t, f);
         b.switch_to(t);
         b.const_i32(1).ret();
         b.switch_to(f);
         b.const_i32(0).ret();
         return b.take();
       }},
      {"eq.i32.br", cmp_br_fn(Opcode::EqI32)},
      {"ne.i32.br", cmp_br_fn(Opcode::NeI32)},
      {"lt_u.i32.br", cmp_br_fn(Opcode::LtUI32)},
      {"le_s.i32.br", cmp_br_fn(Opcode::LeSI32)},
      {"gt_s.i32.br", cmp_br_fn(Opcode::GtSI32)},
      {"ge_s.i32.br", cmp_br_fn(Opcode::GeSI32)},
  };
  const std::vector<std::vector<Value>> arg_sets = {
      {Value::make_i32(3), Value::make_i32(9)},
      {Value::make_i32(-2), Value::make_i32(-2)},
      {Value::make_i32(7), Value::make_i32(-7)},
  };
  for (const Pattern& p : patterns) {
    SCOPED_TRACE(p.name);
    const Function probe = p.build();
    const size_t nparams = probe.sig().params.size();
    Module m;
    m.add_function(p.build());
    expect_verifies(m);
    const PCode pc = predecode(m, 0, /*fuse=*/true);
    EXPECT_GT(pc.fused_count, 0u) << "pattern did not fuse";
    for (const auto& args : arg_sets) {
      std::vector<Value> call_args(args.begin(), args.begin() + nparams);
      // Float patterns reinterpret the i32 seeds as typed constants.
      for (size_t i = 0; i < call_args.size(); ++i) {
        if (probe.sig().params[i] == Type::F32) {
          call_args[i] = Value::make_f32(static_cast<float>(args[i].i32) * 1.5f);
        } else if (probe.sig().params[i] == Type::I64) {
          call_args[i] = Value::make_i64(int64_t{args[i].i32} << 33);
        }
      }
      diff_all(m, 0, call_args);
    }
  }
}

TEST(DispatchDiff, FusedGroupAsBranchTarget) {
  // Blocks that begin with a fusable pair are themselves branch targets:
  // the block-offset fixups must resolve to the *fused* stream layout.
  FunctionBuilder b("p", {{Type::I32}, Type::I32});
  const uint32_t l = b.add_local(Type::I32);
  const uint32_t t = b.new_block();
  const uint32_t f = b.new_block();
  const uint32_t join = b.new_block();
  b.get(0).br_if(t, f);
  b.switch_to(t);
  b.const_i32(5).set(l);
  b.jump(join);
  b.switch_to(f);
  b.const_i32(9).set(l);
  b.jump(join);
  b.switch_to(join);
  b.get(l).ret();
  Module m = single_fn_module(b.take());
  diff_all(m, 0, {Value::make_i32(1)});
  diff_all(m, 0, {Value::make_i32(0)});
}

// --- pre-decoder unit checks ---------------------------------------------

TEST(Predecode, StepAccountingPreserved) {
  // Fused or not, the stream stands for the same number of original
  // instructions.
  Module m = single_fn_module(build_sum_loop());
  size_t original = 0;
  const Function& fn = m.function(0);
  for (uint32_t bi = 0; bi < fn.num_blocks(); ++bi) {
    original += fn.block(bi).insts.size();
  }
  for (const bool fuse : {false, true}) {
    const PCode pc = predecode(m, 0, fuse);
    size_t charged = 0;
    for (const PInst& p : pc.code) charged += p.steps;
    EXPECT_EQ(charged, original);
    if (fuse) {
      EXPECT_GT(pc.fused_count, 0u);
      EXPECT_LT(pc.code.size(), original);
    } else {
      EXPECT_EQ(pc.code.size(), original);
      EXPECT_EQ(pc.fused_count, 0u);
    }
  }
}

TEST(Predecode, CacheSharesAndResets) {
  Module m = single_fn_module(build_sum_loop());
  PredecodeCache cache;
  const auto a = cache.get(m, 0, true);
  const auto b = cache.get(m, 0, true);
  EXPECT_EQ(a.get(), b.get());  // built once
  EXPECT_EQ(cache.size(), 1u);
  const auto u = cache.get(m, 0, false);
  EXPECT_NE(a.get(), u.get());  // fused and unfused variants are distinct
  EXPECT_EQ(cache.size(), 2u);

  // A different module resets the slots; old streams stay alive through
  // the shared_ptrs already handed out.
  Module other = single_fn_module(build_sum_loop());
  const auto c = cache.get(other, 0, true);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(a->code.size(), 0u);
}

// --- coverage gates (run last: gtest executes in declaration order) ------

TEST(DispatchDiff, ZZCoverageAllOpcodes) {
  std::vector<std::string_view> missing;
  for (size_t oi = 0; oi < kNumOpcodes; ++oi) {
    const Opcode op = static_cast<Opcode>(oi);
    if (!covered_ops().count(op)) missing.push_back(op_mnemonic(op));
  }
  EXPECT_TRUE(missing.empty()) << [&] {
    std::string s = "uncovered opcodes:";
    for (const auto& m : missing) {
      s += ' ';
      s += m;
    }
    return s;
  }();
}

TEST(DispatchDiff, ZZCoverageAllFusedOps) {
  std::vector<std::string_view> missing;
  for (size_t oi = kNumOpcodes; oi < kNumPOps; ++oi) {
    const POp op = static_cast<POp>(oi);
    if (!covered_fused().count(op)) missing.push_back(pop_mnemonic(op));
  }
  EXPECT_TRUE(missing.empty()) << [&] {
    std::string s = "unemitted superinstructions:";
    for (const auto& m : missing) {
      s += ' ';
      s += m;
    }
    return s;
  }();
}

}  // namespace
}  // namespace svc
