// The embeddable API surface (api/svc.h): Builder validation, structured
// diagnostics through Result<T>, ModuleHandle ownership, the
// compile -> deploy -> profile -> recompile loop, the module-id cache
// keying, and -- crucially -- bit-identity between the deprecated shims
// (compile_source / compile_or_die / raw load()) and the facade path.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "api/svc.h"
#include "test_util.h"

namespace svc {
namespace {

using ::svc::testing::value_or_die;

const char* kGoodSource = R"(
  fn triple(x: *f32, n: i32) {
    var i: i32 = 0;
    while (i < n) {
      x[i] = 3.0 * x[i];
      i = i + 1;
    }
  }
)";

// --- Builder validation ------------------------------------------------------

TEST(EngineBuilder, DefaultConfigurationBuilds) {
  const Result<Engine> engine = Engine::Builder().build();
  ASSERT_TRUE(engine.ok()) << engine.error_text();
  EXPECT_EQ(engine.value().options().mode, LoadMode::Eager);
}

TEST(EngineBuilder, RejectsUnknownOfflinePass) {
  const Result<Engine> engine =
      Engine::Builder().offline_pipeline("fold,warp_drive,dce").build();
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.error_text().find("warp_drive"), std::string::npos);
}

TEST(EngineBuilder, RejectsMalformedPipelineString) {
  const Result<Engine> engine =
      Engine::Builder().offline_pipeline("fold,,dce").build();
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.error_text().find("not a valid pass list"),
            std::string::npos);
}

TEST(EngineBuilder, RejectsJitPipelineWithoutStackToReg) {
  const Result<Engine> engine =
      Engine::Builder().jit_pipeline("peephole,regalloc").build();
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.error_text().find("stack_to_reg"), std::string::npos);
}

TEST(EngineBuilder, RejectsTieredKnobsOnEagerEngine) {
  const Result<Engine> engine =
      Engine::Builder().prefetch().profiling().tier2(4).build();
  ASSERT_FALSE(engine.ok());
  // Every problem is reported, not just the first.
  EXPECT_EQ(engine.error().size(), 3u);
  EXPECT_NE(engine.error_text().find("prefetch"), std::string::npos);
  EXPECT_NE(engine.error_text().find("profiling"), std::string::npos);
  EXPECT_NE(engine.error_text().find("tier2"), std::string::npos);
}

TEST(EngineBuilder, RejectsZeroPromoteThresholdAndZeroMemory) {
  EXPECT_FALSE(Engine::Builder().tiered(0).build().ok());
  EXPECT_FALSE(Engine::Builder().memory_bytes(0).build().ok());
}

TEST(EngineBuilder, AcceptsFullTieredConfiguration) {
  const Result<Engine> engine = Engine::Builder()
                                    .tiered(2)
                                    .prefetch()
                                    .profiling()
                                    .tier2(8)
                                    .pool_threads(2)
                                    .cache_budget(1 << 20)
                                    .build();
  ASSERT_TRUE(engine.ok()) << engine.error_text();
}

// --- diagnostics through Result ---------------------------------------------

TEST(EngineCompile, SyntaxErrorRoundTripsStructuredDiagnostics) {
  const Engine engine = value_or_die(Engine::Builder().build());
  const Result<ModuleHandle> module = engine.compile(R"(
    fn broken(x: *f32) {
      x[0] = ;
    }
  )");
  ASSERT_FALSE(module.ok());
  ASSERT_FALSE(module.error().empty());
  const Diagnostic& first = module.error().front();
  EXPECT_EQ(first.severity, Severity::Error);
  EXPECT_TRUE(first.loc.valid());
  EXPECT_EQ(first.loc.line, 3u);  // the `x[0] = ;` line
}

TEST(EngineCompile, UnknownPipelinePassSurfacesInResult) {
  // Engine validates at build(); the raw driver reports the same problem
  // through its own Result.
  const Result<Module> module = compile_module(
      kGoodSource,
      [] {
        OfflineOptions opts;
        opts.pipeline = *PipelineSpec::parse("fold,warp_drive");
        return opts;
      }());
  ASSERT_FALSE(module.ok());
  EXPECT_NE(module.error_text().find("warp_drive"), std::string::npos);
}

TEST(EngineLoadBytecode, RejectsCorruptImage) {
  const Engine engine = value_or_die(Engine::Builder().build());
  std::vector<uint8_t> image =
      Engine::save_bytecode(value_or_die(engine.compile(kGoodSource)));
  image[image.size() / 2] ^= 0xff;  // flip a byte inside the payload
  const Result<ModuleHandle> loaded = engine.load_bytecode(image);
  EXPECT_FALSE(loaded.ok());
}

TEST(EngineDeploy, ValidatesHandleAndCores) {
  const Engine engine = value_or_die(Engine::Builder().build());
  const ModuleHandle module = value_or_die(engine.compile(kGoodSource));
  EXPECT_FALSE(engine.deploy(ModuleHandle(), {{TargetKind::X86Sim, false}})
                   .ok());
  EXPECT_FALSE(engine.deploy(module, {}).ok());
}

TEST(Deployment, RunReportsUnknownFunctionAndBadCore) {
  const Engine engine = value_or_die(Engine::Builder().build());
  const ModuleHandle module = value_or_die(engine.compile(kGoodSource));
  Deployment dep = value_or_die(
      engine.deploy(module, {{TargetKind::X86Sim, false}}));
  EXPECT_FALSE(dep.run("no_such_fn", {}).ok());
  EXPECT_FALSE(dep.run_on(7, "triple", {}).ok());
}

// --- ownership ---------------------------------------------------------------

TEST(ModuleHandle, KeepsModuleAliveAfterEngineDestruction) {
  ModuleHandle module;
  {
    const Engine engine = value_or_die(Engine::Builder().build());
    module = value_or_die(engine.compile(kGoodSource));
  }  // engine gone
  ASSERT_TRUE(static_cast<bool>(module));
  EXPECT_EQ(module->num_functions(), 1u);

  // A fresh engine deploys the surviving handle.
  const Engine engine2 = value_or_die(Engine::Builder().build());
  Deployment dep = value_or_die(
      engine2.deploy(module, {{TargetKind::X86Sim, false}}));
  dep.memory().write_f32(64, 2.0f);
  const SimResult r = value_or_die(
      dep.run("triple", {Value::make_i32(64), Value::make_i32(1)}));
  EXPECT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(dep.memory().read_f32(64), 6.0f);
}

TEST(Deployment, KeepsModuleAliveAfterHandleDropped) {
  const Engine engine = value_or_die(Engine::Builder().build());
  Deployment dep = [&engine] {
    const ModuleHandle module = value_or_die(engine.compile(kGoodSource));
    return value_or_die(engine.deploy(module, {{TargetKind::PpcSim, false}}));
  }();  // every external handle is gone; the deployment co-owns the module
  dep.memory().write_f32(128, 1.5f);
  const SimResult r = value_or_die(
      dep.run("triple", {Value::make_i32(128), Value::make_i32(1)}));
  EXPECT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(dep.memory().read_f32(128), 4.5f);
}

// --- stable module ids (the CodeCache lifetime fix) --------------------------

TEST(ModuleId, MonotonicFreshForCopiesTransferredByMoves) {
  Module a;
  Module b;
  EXPECT_NE(a.id(), 0u);
  EXPECT_LT(a.id(), b.id());

  const Module copy = a;  // a copy is a distinct module
  EXPECT_NE(copy.id(), a.id());

  const uint64_t a_id = a.id();
  const Module moved = std::move(a);  // a move transfers the identity
  EXPECT_EQ(moved.id(), a_id);
  EXPECT_EQ(a.id(), 0u);  // NOLINT(bugprone-use-after-move): asserted husk
}

TEST(ModuleId, FreedModuleNeverAliasesCacheArtifacts) {
  // The freed-then-reallocated hazard the id keying fixes: with address
  // keys, `second` allocated where `first` died would inherit artifacts
  // of a dead module. With Module::id() keys the second load is a miss.
  CodeCache cache;
  OnlineTarget::Config config;
  config.cache = &cache;

  auto first = std::make_unique<Module>(
      value_or_die(compile_module(kGoodSource)));
  const uint64_t first_id = first->id();
  {
    OnlineTarget target(TargetKind::X86Sim, {}, config);
    value_or_die(target.load_module(borrow_module(*first)));
  }
  EXPECT_EQ(cache.stats().get("cache.compiles"), 1);
  first.reset();

  auto second = std::make_unique<Module>(
      value_or_die(compile_module(kGoodSource)));
  EXPECT_NE(second->id(), first_id);
  {
    OnlineTarget target(TargetKind::X86Sim, {}, config);
    value_or_die(target.load_module(borrow_module(*second)));
  }
  // Same content, different module identity: a fresh compile, never the
  // stale artifact.
  EXPECT_EQ(cache.stats().get("cache.compiles"), 2);
  EXPECT_EQ(cache.stats().get("cache.hits"), 0);
}

// --- shim-vs-facade bit-identity --------------------------------------------

// The deprecated entry points must stay exact synonyms of the facade:
// same serialized modules, same simulation results, same cache counters.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ShimEquivalence, CompileSourceAndCompileOrDieMatchFacade) {
  for (const KernelInfo& k : table1_kernels()) {
    const Engine engine = value_or_die(Engine::Builder().build());
    const ModuleHandle facade = value_or_die(engine.compile(k.source));

    DiagnosticEngine diags;
    const auto via_source = compile_source(k.source, {}, diags);
    ASSERT_TRUE(via_source.has_value()) << diags.dump();
    const Module via_die = compile_or_die(k.source);

    const std::vector<uint8_t> image = serialize_module(*facade);
    EXPECT_EQ(image, serialize_module(*via_source)) << k.name;
    EXPECT_EQ(image, serialize_module(via_die)) << k.name;
  }
}

TEST(ShimEquivalence, RawLoadMatchesFacadeDeploymentOnAllTargets) {
  const KernelInfo& k = table1_kernels()[4];  // sum u8 (vectorized)
  constexpr int kN = 512;
  const std::vector<Value> args{Value::make_i32(4096), Value::make_i32(kN)};
  const auto fill = [](Memory& mem) {
    for (int i = 0; i < kN; ++i) {
      mem.store_u8(4096 + static_cast<uint32_t>(i),
                   static_cast<uint8_t>(i * 7 + 3));
    }
  };

  const Engine engine = value_or_die(Engine::Builder().build());
  const ModuleHandle module = value_or_die(engine.compile(k.source));

  for (TargetKind kind : all_targets()) {
    // Deprecated path: raw target, raw load(), caller-managed lifetime.
    OnlineTarget old_target(kind);
    old_target.load(*module);
    Memory old_mem(1 << 20);
    fill(old_mem);
    const SimResult old_result = old_target.run(k.fn_name, args, old_mem);

    // Facade path.
    Deployment dep = value_or_die(engine.deploy(module, {{kind, false}}));
    fill(dep.memory());
    const SimResult new_result =
        value_or_die(dep.run_on(0, k.fn_name, args));

    ASSERT_TRUE(old_result.ok());
    ASSERT_TRUE(new_result.ok());
    EXPECT_EQ(old_result.value, new_result.value) << target_desc(kind).name;
    EXPECT_EQ(old_result.stats.cycles, new_result.stats.cycles)
        << target_desc(kind).name;
    EXPECT_EQ(old_result.stats.instructions, new_result.stats.instructions)
        << target_desc(kind).name;
  }
}

TEST(ShimEquivalence, CacheCountersMatchBetweenRawSocAndDeployment) {
  const Module module = value_or_die(compile_module(fir_source()));
  const std::vector<CoreSpec> cores{{TargetKind::X86Sim, false},
                                    {TargetKind::X86Sim, false},
                                    {TargetKind::PpcSim, false}};

  // Deprecated path: hand-built SocOptions + raw load().
  SocOptions options;
  Soc raw_soc(cores, 1 << 20, options);
  raw_soc.load(module);
  const Statistics raw_stats = raw_soc.code_cache().stats();

  // Facade path with the equivalent engine.
  const Engine engine = value_or_die(Engine::Builder().build());
  const ModuleHandle handle = ModuleHandle::adopt(module);
  Deployment dep = value_or_die(engine.deploy(handle, cores));
  const Statistics dep_stats = dep.cache_stats();

  for (const char* key : {"cache.hits", "cache.misses", "cache.compiles",
                          "cache.evictions"}) {
    EXPECT_EQ(raw_stats.get(key), dep_stats.get(key)) << key;
  }
}

#pragma GCC diagnostic pop

// --- the feedback loop through the facade ------------------------------------

TEST(EngineLoop, ProfileExportFeedsWithProfile) {
  // promote_threshold 2: call 1 interprets at tier 0 (collecting the
  // profile), call 2 promotes (no pool: the compile installs
  // synchronously) and runs JITed.
  const Engine engine = value_or_die(
      Engine::Builder().tiered(2).profiling().pool_threads(0).build());
  const ModuleHandle module =
      value_or_die(engine.compile(branchy_max_kernel().source));
  Deployment dep = value_or_die(
      engine.deploy(module, {{TargetKind::X86Sim, false}}));

  for (int i = 0; i < 128; ++i) {
    dep.memory().store_u8(2048 + static_cast<uint32_t>(i),
                          static_cast<uint8_t>(i));
  }
  const std::vector<Value> args{Value::make_i32(2048), Value::make_i32(128)};
  const SimResult cold = value_or_die(
      dep.run(branchy_max_kernel().fn_name, args));
  const SimResult hot = value_or_die(
      dep.run(branchy_max_kernel().fn_name, args));
  EXPECT_TRUE(cold.interpreted);
  EXPECT_FALSE(hot.interpreted);
  EXPECT_EQ(cold.value, hot.value);
  const Deployment::TierCounters tiers = dep.tier_counters();
  EXPECT_EQ(tiers.interpreted, 1u);
  EXPECT_EQ(tiers.jitted, 1u);

  const ModuleHandle profiled = dep.export_profile();
  ASSERT_TRUE(static_cast<bool>(profiled));
  EXPECT_TRUE(has_profile(*profiled));

  // with_profile keeps the profile alive inside the new engine even after
  // `profiled` and the deployment are gone, and seeds the compile.
  Engine tuned = value_or_die(
      Engine::Builder().with_profile(profiled).build());
  const Result<ModuleHandle> recompiled =
      tuned.compile(branchy_max_kernel().source);
  ASSERT_TRUE(recompiled.ok()) << recompiled.error_text();
  EXPECT_TRUE(has_profile(*recompiled.value()));
}

TEST(Deployment, WarmUpFutureFullyPromotes) {
  const Engine engine = value_or_die(
      Engine::Builder().tiered(1000000).pool_threads(2).build());
  const ModuleHandle module = value_or_die(engine.compile(kGoodSource));
  Deployment dep = value_or_die(
      engine.deploy(module, {{TargetKind::X86Sim, false},
                             {TargetKind::SparcSim, false}}));
  dep.warm_up().get();
  // The threshold is unreachable, so only warm_up can have compiled; both
  // cores now serve JITed code immediately.
  for (size_t c = 0; c < dep.num_cores(); ++c) {
    EXPECT_TRUE(dep.soc().core(c).jit_ready(0)) << c;
  }
  dep.memory().write_f32(64, 1.0f);
  const SimResult r = value_or_die(
      dep.run_on(0, "triple", {Value::make_i32(64), Value::make_i32(1)}));
  EXPECT_EQ(r.tier, 1);
  EXPECT_FALSE(r.interpreted);
}

}  // namespace
}  // namespace svc
