// Differential tests: every JIT target and every allocation policy must
// reproduce the reference interpreter bit-for-bit, including memory side
// effects -- the correctness backbone of the whole reproduction.
#include <gtest/gtest.h>

#include "jit/devectorize.h"
#include "jit/stack_to_reg.h"
#include "regalloc/split_alloc.h"
#include "test_util.h"

namespace svc {
namespace {

using namespace ::svc::testing;

void fill_random_bytes(Memory& mem, uint32_t addr, uint32_t len,
                       uint64_t seed) {
  Rng rng(seed);
  for (uint32_t k = 0; k < len; ++k) {
    mem.store_u8(addr + k, static_cast<uint8_t>(rng.next_u32()));
  }
}

TEST(Jit, ScalarSaxpyAllTargets) {
  Module m;
  m.add_function(build_scalar_saxpy());
  run_differential(m, "saxpy",
                   {Value::make_f32(2.5f), Value::make_i32(256),
                    Value::make_i32(1024), Value::make_i32(40)},
                   [](Memory& mem) {
                     for (uint32_t k = 0; k < 40; ++k) {
                       mem.write_f32(256 + 4 * k, 0.125f * k);
                       mem.write_f32(1024 + 4 * k, 1.0f + k);
                     }
                   });
}

TEST(Jit, VectorMaxAllTargets) {
  Module m;
  m.add_function(build_vector_max_u8());
  run_differential(
      m, "vmax_u8", {Value::make_i32(512), Value::make_i32(11)},
      [](Memory& mem) { fill_random_bytes(mem, 512, 11 * 16, 99); });
}

TEST(Jit, VectorDotAllTargets) {
  Module m;
  m.add_function(build_vector_dot_f32());
  run_differential(m, "vdot_f32",
                   {Value::make_i32(256), Value::make_i32(2048),
                    Value::make_i32(7)},
                   [](Memory& mem) {
                     Rng rng(5);
                     for (uint32_t k = 0; k < 7 * 4; ++k) {
                       mem.write_f32(256 + 4 * k, rng.next_f32());
                       mem.write_f32(2048 + 4 * k, rng.next_f32());
                     }
                   });
}

TEST(Jit, BranchyMaxAllTargets) {
  Module m;
  m.add_function(build_branchy_max_u8());
  run_differential(
      m, "smax_u8", {Value::make_i32(128), Value::make_i32(300)},
      [](Memory& mem) { fill_random_bytes(mem, 128, 300, 1234); });
}

TEST(Jit, CallsAllTargets) {
  Module m = build_call_module();
  run_differential(m, "combine", {Value::make_i32(1)}, [](Memory&) {});
}

class JitPolicyTest : public ::testing::TestWithParam<AllocPolicy> {};

TEST_P(JitPolicyTest, HighPressureCorrectUnderAllPolicies) {
  Module m;
  Function fn = build_high_pressure();
  annotate_spill_priorities(fn);  // SplitGuided consumes this
  m.add_function(std::move(fn));
  run_differential(
      m, "pressure16", {Value::make_i32(64)},
      [](Memory& mem) {
        Rng rng(77);
        for (int k = 0; k < 16; ++k) {
          mem.write_i32(64 + 4 * k, static_cast<int32_t>(rng.next_u32()));
        }
      },
      GetParam());
}

TEST_P(JitPolicyTest, VectorKernelCorrectUnderAllPolicies) {
  Module m;
  Function fn = build_vector_max_u8();
  annotate_spill_priorities(fn);
  m.add_function(std::move(fn));
  run_differential(
      m, "vmax_u8", {Value::make_i32(512), Value::make_i32(6)},
      [](Memory& mem) { fill_random_bytes(mem, 512, 6 * 16, 4242); },
      GetParam());
}

TEST_P(JitPolicyTest, SaxpyCorrectUnderAllPolicies) {
  Module m;
  Function fn = build_scalar_saxpy();
  annotate_spill_priorities(fn);
  m.add_function(std::move(fn));
  run_differential(
      m, "saxpy",
      {Value::make_f32(-1.5f), Value::make_i32(256), Value::make_i32(1024),
       Value::make_i32(17)},
      [](Memory& mem) {
        for (uint32_t k = 0; k < 17; ++k) {
          mem.write_f32(256 + 4 * k, 0.5f + k);
          mem.write_f32(1024 + 4 * k, 2.0f - k);
        }
      },
      GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, JitPolicyTest,
    ::testing::Values(AllocPolicy::NaiveOnline, AllocPolicy::LinearScan,
                      AllocPolicy::SplitGuided, AllocPolicy::OfflineChaitin),
    [](const ::testing::TestParamInfo<AllocPolicy>& info) {
      std::string name = alloc_policy_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Jit, SpillPressureHitsWeakTargets) {
  // pressure16 needs ~17+ simultaneous int values; sparcsim (12 regs)
  // must spill, ppcsim (24) must not.
  Module m;
  m.add_function(build_high_pressure());

  JitCompiler sparc(target_desc(TargetKind::SparcSim));
  JitArtifact a = sparc.compile(m, 0);
  EXPECT_GT(a.stats.get("jit.spilled_vregs"), 0);

  JitCompiler ppc(target_desc(TargetKind::PpcSim));
  JitArtifact b = ppc.compile(m, 0);
  EXPECT_EQ(b.stats.get("jit.spilled_vregs"), 0);
}

TEST(Jit, DevectorizeRemovesAllVectorCode) {
  Module m;
  m.add_function(build_vector_max_u8());
  MFunction mf = stack_to_reg(m, m.function(0));
  devectorize(mf);
  for (const MBlock& block : mf.blocks) {
    for (const MInst& inst : block.insts) {
      EXPECT_FALSE(inst.dst.valid && inst.dst.cls == RegClass::Vec);
      EXPECT_FALSE(inst.s0.valid && inst.s0.cls == RegClass::Vec);
      EXPECT_FALSE(inst.s1.valid && inst.s1.cls == RegClass::Vec);
      if (!is_machine_only(inst.op)) {
        EXPECT_FALSE(is_vector_op(base_opcode(inst.op)))
            << inst.str();
      }
    }
  }
  EXPECT_EQ(mf.num_vregs[static_cast<size_t>(RegClass::Vec)], 0u);
}

TEST(Jit, FmaFormedOnPpc) {
  Module m;
  m.add_function(build_scalar_saxpy());
  JitCompiler ppc(target_desc(TargetKind::PpcSim));
  JitArtifact a = ppc.compile(m, 0);
  EXPECT_GT(a.stats.get("jit.fma_formed"), 0);

  JitCompiler x86(target_desc(TargetKind::X86Sim));
  JitArtifact b = x86.compile(m, 0);
  EXPECT_EQ(b.stats.get("jit.fma_formed"), 0);
}

TEST(Jit, SimdTargetKeepsVectorOpsScalarTargetExpands) {
  Module m;
  m.add_function(build_vector_max_u8());

  JitCompiler x86(target_desc(TargetKind::X86Sim));
  JitArtifact a = x86.compile(m, 0);
  bool has_vmax = false;
  for (const MBlock& block : a.code.blocks) {
    for (const MInst& inst : block.insts) {
      if (!is_machine_only(inst.op) &&
          base_opcode(inst.op) == Opcode::VMaxU8) {
        has_vmax = true;
      }
    }
  }
  EXPECT_TRUE(has_vmax);

  JitCompiler sparc(target_desc(TargetKind::SparcSim));
  JitArtifact b = sparc.compile(m, 0);
  EXPECT_GT(b.stats.get("jit.vector_insts_expanded"), 0);
  // Scalarized code is larger than SIMD code for the same kernel.
  EXPECT_GT(b.stats.get("jit.code_bytes"), a.stats.get("jit.code_bytes"));
}

TEST(Jit, TrapsPropagateFromSimulator) {
  FunctionBuilder b("oob", {{}, Type::I32});
  b.const_i32(1 << 30).load(Opcode::LoadI32).ret();
  Module m;
  m.add_function(b.take());
  expect_verifies(m);

  const MachineDesc& desc = target_desc(TargetKind::X86Sim);
  JitCompiler jit(desc);
  const auto code = jit.compile_module(m);
  Memory mem(1 << 16);
  Simulator sim(desc, code, mem);
  EXPECT_EQ(sim.run(0, {}).trap, TrapKind::OutOfBoundsMemory);
}

TEST(Jit, DivideByZeroTrapsInSimulator) {
  FunctionBuilder b("dz", {{Type::I32}, Type::I32});
  b.const_i32(10).get(0).op(Opcode::DivSI32).ret();
  Module m;
  m.add_function(b.take());
  const MachineDesc& desc = target_desc(TargetKind::PpcSim);
  JitCompiler jit(desc);
  const auto code = jit.compile_module(m);
  Memory mem(1 << 12);
  Simulator sim(desc, code, mem);
  const std::vector<Value> zero = {Value::make_i32(0)};
  EXPECT_EQ(sim.run(0, zero).trap, TrapKind::DivideByZero);
  const std::vector<Value> two = {Value::make_i32(2)};
  const SimResult ok = sim.run(0, two);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value.i32, 5);
}

TEST(Jit, CycleAccountingMonotonic) {
  // More iterations must cost more cycles.
  Module m;
  m.add_function(build_branchy_max_u8());
  const MachineDesc& desc = target_desc(TargetKind::X86Sim);
  JitCompiler jit(desc);
  const auto code = jit.compile_module(m);
  Memory mem(1 << 16);
  fill_random_bytes(mem, 128, 600, 5);
  Simulator sim(desc, code, mem);
  const SimResult r100 =
      sim.run(0, std::vector<Value>{Value::make_i32(128), Value::make_i32(100)});
  const SimResult r500 =
      sim.run(0, std::vector<Value>{Value::make_i32(128), Value::make_i32(500)});
  ASSERT_TRUE(r100.ok());
  ASSERT_TRUE(r500.ok());
  EXPECT_GT(r500.stats.cycles, r100.stats.cycles);
  EXPECT_GT(r500.stats.instructions, r100.stats.instructions);
  EXPECT_GT(r500.stats.branches, 0u);
}

TEST(Jit, BranchPredictorLearnsLoops) {
  // A long counted loop's back-edge should be predicted almost always.
  Module m;
  m.add_function(build_branchy_max_u8());
  const MachineDesc& desc = target_desc(TargetKind::X86Sim);
  JitCompiler jit(desc);
  const auto code = jit.compile_module(m);
  Memory mem(1 << 16);
  // All-zero data: the "update max" branch is never taken after warmup.
  Simulator sim(desc, code, mem);
  const SimResult r = sim.run(
      0, std::vector<Value>{Value::make_i32(128), Value::make_i32(1000)});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(static_cast<double>(r.stats.mispredicts),
            0.02 * static_cast<double>(r.stats.branches));
}

TEST(Jit, SplitAnnotationsReduceSpillsVsNaive) {
  // The headline split-regalloc effect on a pressure-heavy function.
  Module m;
  Function fn = build_high_pressure();
  annotate_spill_priorities(fn);
  m.add_function(std::move(fn));

  const MachineDesc& desc = target_desc(TargetKind::SparcSim);
  JitCompiler naive(desc, {AllocPolicy::NaiveOnline, true});
  JitCompiler split(desc, {AllocPolicy::SplitGuided, true});
  const auto a = naive.compile(m, 0);
  const auto b = split.compile(m, 0);
  EXPECT_LE(b.stats.get("jit.static_spill_loads"),
            a.stats.get("jit.static_spill_loads"));
}

}  // namespace
}  // namespace svc
