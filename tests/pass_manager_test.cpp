// The unified pass-pipeline subsystem: PipelineSpec string round-trips,
// registration and ordered execution with per-pass timing, rejection of
// unknown pass names, and -- the load-bearing part -- proof that the
// offline and JIT default pipelines run through the PassManager produce
// exactly the modules/machine code the pre-refactor hard-wired chains
// produced.
#include <gtest/gtest.h>

#include "bytecode/serializer.h"
#include "driver/kernels.h"
#include "frontend/irgen.h"
#include "frontend/parser.h"
#include "ir/ir_pipeline.h"
#include "jit/jit_pipeline.h"
#include "runtime/iterative.h"
#include "support/pass_manager.h"
#include "test_util.h"

namespace svc {
namespace {

using ::svc::testing::expect_verifies;
using ::svc::testing::value_or_die;

// --- PipelineSpec ----------------------------------------------------------

TEST(PipelineSpec, ParseAndRoundtrip) {
  const auto spec = PipelineSpec::parse("fold,simplify,dce,if_convert,vectorize");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->size(), 5u);
  EXPECT_EQ(spec->names()[0], "fold");
  EXPECT_EQ(spec->names()[4], "vectorize");
  EXPECT_EQ(spec->str(), "fold,simplify,dce,if_convert,vectorize");
  EXPECT_EQ(PipelineSpec::parse(spec->str()), *spec);
}

TEST(PipelineSpec, TrimsWhitespace) {
  const auto spec = PipelineSpec::parse(" fold , dce ");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->str(), "fold,dce");
}

TEST(PipelineSpec, EmptyStringIsEmptySpec) {
  const auto spec = PipelineSpec::parse("");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->empty());
  EXPECT_EQ(spec->str(), "");
}

TEST(PipelineSpec, RejectsMalformedInput) {
  EXPECT_FALSE(PipelineSpec::parse("fold,,dce").has_value());
  EXPECT_FALSE(PipelineSpec::parse(",fold").has_value());
  EXPECT_FALSE(PipelineSpec::parse("fold,").has_value());
  EXPECT_FALSE(PipelineSpec::parse("fold dce").has_value());
  EXPECT_FALSE(PipelineSpec::parse("f*ld").has_value());
}

TEST(PipelineSpec, ContainsAndAppend) {
  PipelineSpec spec;
  spec.append("fold");
  spec.append(*PipelineSpec::parse("dce,licm"));
  EXPECT_TRUE(spec.contains("dce"));
  EXPECT_FALSE(spec.contains("vectorize"));
  EXPECT_EQ(spec.str(), "fold,dce,licm");
}

// --- PassManager machinery ---------------------------------------------------

struct TestCtx {
  int multiplier = 2;
};

TEST(PassManagerGeneric, RunsInOrderWithStatsAndTiming) {
  PassManager<int, TestCtx> pm("t.");
  std::vector<std::string> order;
  pm.register_pass("double", "x *= ctx.multiplier",
                   [&](int& x, TestCtx& ctx, Statistics& stats) {
                     x *= ctx.multiplier;
                     stats.add("doubled", 1);
                     order.push_back("double");
                   });
  pm.register_pass("inc", "x += 1",
                   [&](int& x, TestCtx&, Statistics& stats) {
                     x += 1;
                     stats.add("incremented", 1);
                     order.push_back("inc");
                   });

  EXPECT_TRUE(pm.has_pass("double"));
  EXPECT_FALSE(pm.has_pass("triple"));
  EXPECT_EQ(pm.pass_names(), (std::vector<std::string>{"double", "inc"}));

  int unit = 3;
  TestCtx ctx;
  Statistics agg;
  const auto spec = *PipelineSpec::parse("inc,double,double");
  const PipelineRunReport report = pm.run(spec, unit, ctx, &agg);

  EXPECT_EQ(unit, 16);  // (3+1)*2*2
  EXPECT_EQ(order, (std::vector<std::string>{"inc", "double", "double"}));
  ASSERT_EQ(report.passes.size(), 3u);
  EXPECT_EQ(report.passes[0].name, "inc");
  EXPECT_EQ(report.passes[1].delta.get("doubled"), 1);
  EXPECT_EQ(agg.get("doubled"), 2);
  EXPECT_EQ(agg.get("incremented"), 1);
  // Per-pass wall time lands under the manager's prefix.
  EXPECT_TRUE(agg.has("t.double"));
  EXPECT_TRUE(agg.has("t.inc"));
  EXPECT_GE(report.total_seconds, 0.0);
}

TEST(PassManagerGeneric, FirstUnknownFindsBadName) {
  PassManager<int, TestCtx> pm;
  pm.register_pass("a", "", [](int&, TestCtx&, Statistics&) {});
  EXPECT_FALSE(pm.first_unknown(*PipelineSpec::parse("a,a")).has_value());
  const auto unknown = pm.first_unknown(*PipelineSpec::parse("a,b,a"));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(*unknown, "b");
}

TEST(StatisticsTimers, ScopedTimerAccumulatesIntoCounter) {
  Statistics stats;
  {
    StatTimer t(stats, "scoped_us");
  }
  EXPECT_TRUE(stats.has("scoped_us"));
  EXPECT_GE(stats.get("scoped_us"), 0);
  {
    StatTimer t(stats, "scoped_us");  // second scope adds to the same key
  }
  EXPECT_TRUE(stats.has("scoped_us"));
}

// --- registries --------------------------------------------------------------

TEST(IrPipeline, RegistryHasAllDocumentedPasses) {
  for (const char* name :
       {"coalesce", "fold", "simplify", "dce", "licm", "if_convert",
        "cleanup", "cleanup_nosimp", "vectorize"}) {
    EXPECT_TRUE(ir_pass_manager().has_pass(name)) << name;
  }
  EXPECT_FALSE(ir_pass_manager().has_pass("regalloc"));
}

TEST(JitPipeline, RegistryHasAllDocumentedPasses) {
  for (const char* name :
       {"stack_to_reg", "peephole", "fma", "devectorize", "regalloc"}) {
    EXPECT_TRUE(jit_pass_manager().has_pass(name)) << name;
  }
  EXPECT_FALSE(jit_pass_manager().has_pass("vectorize"));
}

TEST(IrPipeline, DefaultSpecsRoundtripThroughStrings) {
  for (bool vectorize : {false, true}) {
    for (bool if_convert : {false, true}) {
      for (bool simplify : {false, true}) {
        PassOptions passes;
        passes.if_convert = if_convert;
        passes.simplify = simplify;
        const PipelineSpec spec = default_ir_pipeline(passes, vectorize);
        const auto reparsed = PipelineSpec::parse(spec.str());
        ASSERT_TRUE(reparsed.has_value()) << spec.str();
        EXPECT_EQ(*reparsed, spec);
        EXPECT_FALSE(ir_pass_manager().first_unknown(spec).has_value())
            << spec.str();
      }
    }
  }
}

TEST(JitPipeline, DefaultSpecsRoundtripForEveryTarget) {
  for (TargetKind kind : all_targets()) {
    const MachineDesc& desc = target_desc(kind);
    const PipelineSpec spec = default_jit_pipeline(desc);
    const auto reparsed = PipelineSpec::parse(spec.str());
    ASSERT_TRUE(reparsed.has_value()) << desc.name;
    EXPECT_EQ(*reparsed, spec) << desc.name;
    EXPECT_FALSE(jit_pass_manager().first_unknown(spec).has_value());
    EXPECT_EQ(spec.names().front(), "stack_to_reg");
    EXPECT_EQ(spec.names().back(), "regalloc");
  }
}

// --- unknown-name / bad-shape rejection --------------------------------------

TEST(JitPipeline, CompileRejectsPipelineWithoutTranslation) {
  const Module module = value_or_die(compile_module(table1_kernels()[0].source));
  JitOptions opts;
  opts.pipeline = *PipelineSpec::parse("peephole,regalloc");
  JitCompiler jit(target_desc(TargetKind::X86Sim), opts);
  EXPECT_DEATH((void)jit.compile(module, 0), "must start with stack_to_reg");
}

TEST(IrPipeline, CompileRejectsUnknownPassName) {
  OfflineOptions opts;
  opts.pipeline = *PipelineSpec::parse("cleanup,licm,warp_drive");
  const Result<Module> module =
      compile_module(table1_kernels()[0].source, opts);
  EXPECT_FALSE(module.ok());
  EXPECT_NE(module.error_text().find("warp_drive"), std::string::npos);
}

// --- equivalence with the pre-refactor chains --------------------------------

// The manager-driven spec for a knob setting must transform IR exactly as
// the legacy run_passes(...) [+ vectorize + run_passes] sequence did.
TEST(IrPipeline, SpecMatchesLegacyScheduleOnIr) {
  for (bool vectorize : {false, true}) {
    for (bool if_convert : {false, true}) {
      for (bool simplify : {false, true}) {
        PassOptions passes;
        passes.if_convert = if_convert;
        passes.simplify = simplify;

        DiagnosticEngine diags;
        auto program = parse_program(table1_kernels()[1].source, diags);
        ASSERT_TRUE(program.has_value()) << diags.dump();
        auto fns = generate_ir(*program, diags);
        ASSERT_TRUE(fns.has_value()) << diags.dump();
        ASSERT_EQ(fns->size(), 1u);

        IRFunction legacy = (*fns)[0];
        IRFunction piped = (*fns)[0];

        run_passes(legacy, passes);
        if (vectorize) {
          svc::vectorize(legacy);
          run_passes(legacy, passes);
        }

        IRPipelineContext ctx;
        ir_pass_manager().run(default_ir_pipeline(passes, vectorize), piped,
                              ctx);

        EXPECT_EQ(piped.str(), legacy.str())
            << "vec=" << vectorize << " ifcvt=" << if_convert
            << " simp=" << simplify;
      }
    }
  }
}

// Explicit-pipeline compilation must produce byte-identical modules to the
// boolean-knob default path, for every knob setting and kernel.
TEST(IrPipeline, ExplicitSpecCompilesIdenticalModules) {
  for (const KernelInfo& k : table1_kernels()) {
    for (bool vectorize : {false, true}) {
      OfflineOptions knob_opts;
      knob_opts.vectorize = vectorize;

      OfflineOptions spec_opts;
      spec_opts.pipeline = default_ir_pipeline(knob_opts.passes, vectorize);

      const Module via_knobs = value_or_die(compile_module(k.source, knob_opts));
      const Module via_spec = value_or_die(compile_module(k.source, spec_opts));
      expect_verifies(via_spec);
      EXPECT_EQ(serialize_module(via_spec), serialize_module(via_knobs))
          << k.name << " vectorize=" << vectorize;
    }
  }
}

// A JIT given its own default pipeline explicitly must emit exactly the
// machine code of the implicit default, on every target.
TEST(JitPipeline, ExplicitSpecProducesIdenticalMachineCode) {
  const Module module = value_or_die(compile_module(table1_kernels()[1].source));
  for (TargetKind kind : all_targets()) {
    const MachineDesc& desc = target_desc(kind);

    JitCompiler implicit_jit(desc);
    JitOptions opts;
    opts.pipeline = default_jit_pipeline(desc);
    JitCompiler explicit_jit(desc, opts);

    const JitArtifact a = implicit_jit.compile(module, 0);
    const JitArtifact b = explicit_jit.compile(module, 0);
    EXPECT_EQ(b.code.str(), a.code.str()) << desc.name;
    EXPECT_EQ(b.stats.get("jit.spilled_vregs"),
              a.stats.get("jit.spilled_vregs"));
  }
}

// --- per-pass timing through the drivers --------------------------------------

TEST(IrPipeline, CompileReportsPerPassTimes) {
  Statistics stats;
  const Result<Module> module =
      compile_module(table1_kernels()[0].source, {}, &stats);
  ASSERT_TRUE(module.ok()) << module.error_text();
  EXPECT_TRUE(stats.has("offline.pass_us.cleanup"));
  EXPECT_TRUE(stats.has("offline.pass_us.vectorize"));
  EXPECT_TRUE(stats.has("offline.pass_us.licm"));
}

TEST(JitPipeline, JitReportsPerPassTimes) {
  const Module module = value_or_die(compile_module(table1_kernels()[0].source));
  for (TargetKind kind : all_targets()) {
    JitCompiler jit(target_desc(kind));
    const JitArtifact artifact = jit.compile(module, 0);
    EXPECT_TRUE(artifact.stats.has("jit.pass_us.stack_to_reg"));
    EXPECT_TRUE(artifact.stats.has("jit.pass_us.peephole"));
    EXPECT_TRUE(artifact.stats.has("jit.pass_us.regalloc"));
  }
}

// --- tuner over pipeline specs -------------------------------------------------

TEST(TunePresets, Classic8MatchesLegacySpace) {
  const std::vector<TuneConfig> space = classic8_preset();
  ASSERT_EQ(space.size(), 8u);
  // Legacy evaluation order: vectorize outermost, simplify innermost.
  EXPECT_EQ(space[0].str(), "novec+nosimp");
  EXPECT_EQ(space[1].str(), "novec+simp");
  EXPECT_EQ(space[2].str(), "novec+ifcvt+nosimp");
  EXPECT_EQ(space[7].str(), "vec+ifcvt+simp");
  for (const TuneConfig& config : space) {
    EXPECT_EQ(PipelineSpec::parse(config.pipeline.str()), config.pipeline);
    EXPECT_FALSE(
        ir_pass_manager().first_unknown(config.pipeline).has_value());
  }
  EXPECT_TRUE(space[7].uses("vectorize"));
  EXPECT_FALSE(space[0].uses("vectorize"));

  EXPECT_EQ(tune_preset("classic8").size(), 8u);
  EXPECT_EQ(tune_preset("vectorize4").size(), 4u);
  EXPECT_TRUE(tune_preset("nope").empty());
}

TEST(TunePresets, CustomSpaceIsSearchable) {
  // A two-point custom space: default pipeline vs. scalar-only. On the
  // SIMD-capable x86 core the vectorized schedule must win for dscal.
  const KernelInfo& k = table1_kernels()[2];
  std::vector<TuneConfig> space;
  space.push_back({"full", default_ir_pipeline({}, true)});
  space.push_back({"scalar", default_ir_pipeline({}, false)});

  const TuneResult result =
      tune(k.source, TargetKind::X86Sim, [&](OnlineTarget& target) {
        Memory mem(1 << 20);
        for (int i = 0; i < 512; ++i) {
          mem.write_f32(1024 + 4 * static_cast<uint32_t>(i), 1.0f);
        }
        const SimResult r = target.run(
            k.fn_name,
            {Value::make_f32(0.5f), Value::make_i32(1024),
             Value::make_i32(512)},
            mem);
        return r.ok() ? r.stats.cycles : UINT64_MAX;
      }, space);
  ASSERT_EQ(result.all.size(), 2u);
  EXPECT_EQ(result.best.config.str(), "full");
}

}  // namespace
}  // namespace svc
