// Register-allocation analyses, allocator quality ordering, the
// heterogeneous runtime (SoC / mapper / dataflow / iterative driver), and
// robustness sweeps (serializer fuzzing, random-program differential).
#include <gtest/gtest.h>

#include "bytecode/serializer.h"
#include "driver/kernels.h"
#include "driver/offline_compiler.h"
#include "jit/stack_to_reg.h"
#include "regalloc/interference.h"
#include "regalloc/split_alloc.h"
#include "runtime/dataflow.h"
#include "runtime/iterative.h"
#include "runtime/mapper.h"
#include "test_util.h"

namespace svc {
namespace {

using namespace ::svc::testing;

MFunction translated(const Module& m) { return stack_to_reg(m, m.function(0)); }

TEST(Liveness, LoopKeepsInductionLive) {
  Module m;
  m.add_function(build_scalar_saxpy());
  const MFunction mf = translated(m);
  const Liveness live = compute_liveness(mf);
  // The induction variable (a local) is live into the loop header
  // (block 1) and out of the body (block 2).
  const Reg iv = mf.local_regs[4][0];
  EXPECT_TRUE(live.live_in(1, vreg_key(iv)));
  EXPECT_TRUE(live.live_out(2, vreg_key(iv)));
}

TEST(Liveness, IntervalsCoverDefsAndUses) {
  Module m;
  m.add_function(build_high_pressure());
  const MFunction mf = translated(m);
  const LinearOrder order = linearize(mf);
  const Liveness live = compute_liveness(mf);
  const auto intervals = build_intervals(mf, order, &live);
  EXPECT_GE(intervals.size(), 16u);
  for (const auto& iv : intervals) {
    EXPECT_LE(iv.start, iv.end);
    EXPECT_LT(iv.end, order.total);
  }
}

TEST(Liveness, NaiveModeIsMoreConservative) {
  Module m;
  m.add_function(build_scalar_saxpy());
  const MFunction mf = translated(m);
  const LinearOrder order = linearize(mf);
  const Liveness live = compute_liveness(mf);
  const auto precise = build_intervals(mf, order, &live);
  const auto naive = build_intervals(mf, order, nullptr);
  uint64_t precise_len = 0, naive_len = 0;
  for (const auto& iv : precise) precise_len += iv.end - iv.start;
  for (const auto& iv : naive) naive_len += iv.end - iv.start;
  EXPECT_GE(naive_len, precise_len);
}

TEST(Interference, PressureFunctionIsClique) {
  Module m;
  m.add_function(build_high_pressure());
  const MFunction mf = translated(m);
  const Liveness live = compute_liveness(mf);
  const InterferenceGraph graph = build_interference(mf, live);
  // The 16 simultaneously-live locals must pairwise interfere.
  const Reg a = mf.local_regs[1][0];
  const Reg b = mf.local_regs[16][0];
  EXPECT_TRUE(graph.interferes(vreg_key(a), vreg_key(b)));
  EXPECT_GE(graph.num_edges(), 16u * 15u / 2u);
}

TEST(Allocators, QualityOrderingHolds) {
  // chaitin <= linear-scan <= split <= naive in static spills on the
  // pressure suite.
  Module m;
  Function fn = build_high_pressure();
  annotate_spill_priorities(fn);
  m.add_function(std::move(fn));
  const MachineDesc& desc = target_desc(TargetKind::SparcSim);
  auto spills = [&](AllocPolicy p) {
    JitCompiler jit(desc, {p, true});
    Statistics stats;
    (void)jit.compile_module(m, &stats);
    return stats.get("jit.static_spill_loads") +
           stats.get("jit.static_spill_stores");
  };
  const auto naive = spills(AllocPolicy::NaiveOnline);
  const auto split = spills(AllocPolicy::SplitGuided);
  const auto lscan = spills(AllocPolicy::LinearScan);
  const auto chaitin = spills(AllocPolicy::OfflineChaitin);
  EXPECT_LE(chaitin, lscan);
  EXPECT_LE(split, naive);
}

TEST(SplitAlloc, RanksLongLivedColdLocalsFirst) {
  // A local used once over a long span must rank as a better spill
  // candidate than the loop induction variable.
  const char* src =
      "fn f(p: *i32, n: i32) -> i32 {"
      "  var cold: i32 = p[0];"
      "  var s: i32 = 0;"
      "  var i: i32 = 0;"
      "  while (i < n) { s = s + p[i]; i = i + 1; }"
      "  return s + cold;"
      "}";
  OfflineOptions opts;
  opts.vectorize = false;
  const Module m = value_or_die(compile_module(src, opts));
  const auto* ann = find_annotation(m.function(0).annotations(),
                                    AnnotationKind::SpillPriority);
  ASSERT_NE(ann, nullptr);
  const auto prio = SpillPriorityInfo::decode(ann->payload);
  ASSERT_TRUE(prio.has_value());
  ASSERT_GE(prio->weights.size(), 2u);
  // Weights ascend by construction (eviction order = coldest first).
  for (size_t i = 1; i < prio->weights.size(); ++i) {
    EXPECT_LE(prio->weights[i - 1], prio->weights[i]);
  }
}

TEST(Mapper, VectorKernelPrefersSimdCoreControlStaysHost) {
  const std::string source =
      std::string(fir_source()) + std::string(control_kernel().source);
  const Module module = value_or_die(compile_module(source));
  Soc soc({{TargetKind::PpcSim, false}, {TargetKind::SpuSim, true}}, 1 << 20);
  load_or_die(soc, module);
  const auto fir_idx = module.find_function("fir4");
  const auto ctl_idx = module.find_function("count_runs");
  ASSERT_TRUE(fir_idx && ctl_idx);
  EXPECT_EQ(choose_core(soc, module.function(*fir_idx)), 1u);
  EXPECT_EQ(choose_core(soc, module.function(*ctl_idx)), 0u);
}

TEST(Mapper, MissingAnnotationsFallBackGracefully) {
  Module m;
  m.add_function(build_scalar_saxpy());  // no annotations at all
  Soc soc({{TargetKind::PpcSim, false}, {TargetKind::SpuSim, true}}, 1 << 16);
  load_or_die(soc, m);
  // No crash, host preferred (accelerator pays the DMA bias).
  EXPECT_EQ(choose_core(soc, m.function(0)), 0u);
}

TEST(Dataflow, PipelineTimingModel) {
  const Module module = value_or_die(compile_module(fir_source()));
  Soc soc({{TargetKind::PpcSim, false}, {TargetKind::SpuSim, true}}, 1 << 20);
  load_or_die(soc, module);
  for (int i = 0; i < 300; ++i) {
    soc.memory().write_f32(256 + 4 * static_cast<uint32_t>(i), 0.5f);
  }
  Pipeline pipeline(soc);
  pipeline.add_stage({"gain", 0, 0, [&]() {
                        return soc.run_on(0, "gain",
                                          {Value::make_i32(256),
                                           Value::make_i32(256),
                                           Value::make_f32(2.0f)});
                      }});
  pipeline.add_stage({"energy", 1, 1024, [&]() {
                        return soc.run_on(1, "energy",
                                          {Value::make_i32(256),
                                           Value::make_i32(256)});
                      }});
  const PipelineReport report = pipeline.run(10);
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].dma_cycles, 0u);       // host stage: no DMA
  EXPECT_GT(report.stages[1].dma_cycles, 0u);       // accelerator pays DMA
  EXPECT_EQ(report.latency_cycles, report.stages[0].total_cycles() +
                                       report.stages[1].total_cycles());
  EXPECT_EQ(report.steady_total_cycles,
            report.latency_cycles + 9 * report.bottleneck_cycles());
}

TEST(Iterative, FindsVectorizationOnSimdTarget) {
  const KernelInfo& k = table1_kernels()[2];  // dscal
  const TuneResult result =
      tune(k.source, TargetKind::X86Sim, [&](OnlineTarget& target) {
        Memory mem(1 << 20);
        for (int i = 0; i < 512; ++i) {
          mem.write_f32(1024 + 4 * static_cast<uint32_t>(i), 1.0f);
        }
        const SimResult r = target.run(
            k.fn_name,
            {Value::make_f32(0.5f), Value::make_i32(1024),
             Value::make_i32(512)},
            mem);
        return r.ok() ? r.stats.cycles : UINT64_MAX;
      });
  EXPECT_TRUE(result.best.config.uses("vectorize"));
  EXPECT_EQ(result.all.size(), 8u);
}

TEST(Serializer, FuzzCorruptImagesNeverCrash) {
  Module m;
  for (const KernelInfo& k : table1_kernels()) {
    Module km = value_or_die(compile_module(k.source));
    m.add_function(km.function(0));
  }
  std::vector<uint8_t> image = serialize_module(m);
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> corrupt = image;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      corrupt[rng.next_below(corrupt.size())] ^=
          static_cast<uint8_t>(1 + rng.next_below(255));
    }
    // Either rejected or, if the CRC happens to still match, the module
    // must pass or fail the verifier without crashing.
    const DeserializeResult r = deserialize_module(corrupt);
    if (r.module) {
      DiagnosticEngine diags;
      (void)verify_module(*r.module, diags);
    }
  }
  // Truncations at every length must be rejected cleanly.
  for (size_t len = 0; len < image.size(); len += 7) {
    std::vector<uint8_t> truncated(image.begin(),
                                   image.begin() + static_cast<long>(len));
    EXPECT_FALSE(deserialize_module(truncated).module.has_value());
  }
}

TEST(Property, RandomStraightLineProgramsMatchAcrossTargets) {
  // Random arithmetic DAGs over i32/f32 locals: interpreter vs all JITs.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    FunctionBuilder b("rand", {{Type::I32, Type::I32, Type::F32}, Type::I32});
    std::vector<uint32_t> ints = {0, 1};
    std::vector<uint32_t> flts = {2};
    const int ops = 10 + static_cast<int>(rng.next_below(30));
    for (int i = 0; i < ops; ++i) {
      if (rng.next_bool()) {
        const uint32_t l = b.add_local(Type::I32);
        const Opcode choices[] = {Opcode::AddI32, Opcode::SubI32,
                                  Opcode::MulI32, Opcode::XorI32,
                                  Opcode::MinSI32, Opcode::MaxUI32,
                                  Opcode::ShlI32, Opcode::ShrUI32};
        b.get(ints[rng.next_below(ints.size())])
            .get(ints[rng.next_below(ints.size())])
            .op(choices[rng.next_below(8)])
            .set(l);
        ints.push_back(l);
      } else {
        const uint32_t l = b.add_local(Type::F32);
        const Opcode choices[] = {Opcode::AddF32, Opcode::SubF32,
                                  Opcode::MulF32, Opcode::MinF32,
                                  Opcode::MaxF32};
        b.get(flts[rng.next_below(flts.size())])
            .get(flts[rng.next_below(flts.size())])
            .op(choices[rng.next_below(5)])
            .set(l);
        flts.push_back(l);
      }
    }
    // Fold everything into one result.
    b.get(ints.back());
    b.get(flts.back()).op(Opcode::F32ToI32S).op(Opcode::XorI32);
    b.ret();
    Module m;
    m.add_function(b.take());
    run_differential(
        m, "rand",
        {Value::make_i32(static_cast<int32_t>(rng.next_u32())),
         Value::make_i32(static_cast<int32_t>(rng.next_u32())),
         Value::make_f32(rng.next_f32() * 100.0f)},
        [](Memory&) {});
  }
}

TEST(Soc, SharedMemoryVisibleAcrossCores) {
  const Module module = value_or_die(compile_module(fir_source()));
  Soc soc({{TargetKind::X86Sim, false}, {TargetKind::SparcSim, false}},
          1 << 16);
  load_or_die(soc, module);
  for (int i = 0; i < 64; ++i) {
    soc.memory().write_f32(256 + 4 * static_cast<uint32_t>(i), 1.0f);
  }
  // Core 0 scales in place; core 1 must observe the result.
  const SimResult w = soc.run_on(0, "gain",
                                 {Value::make_i32(256), Value::make_i32(64),
                                  Value::make_f32(3.0f)});
  ASSERT_TRUE(w.ok());
  const SimResult r = soc.run_on(1, "energy",
                                 {Value::make_i32(256), Value::make_i32(64)});
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(r.value.f32, 64.0f * 9.0f);
}

}  // namespace
}  // namespace svc
